"""Incremental-decode equivalence: cached decode vs full recompute.

Three tiers of equivalence are pinned, property-tested over random prefix
lengths:

* **one-shot prefill** (whole sequence into an empty fp cache) runs the exact
  same shapes through the exact same ops as the full forward — bitwise equal;
* **stepwise fp32-mode decode** (prefill a random prefix, then feed one token
  at a time) is numerically exact: single-row GEMMs may take a different BLAS
  kernel path than the full-sequence GEMM (gemv vs gemm), which reorders
  floating-point accumulation by ~1 ulp, so logits are compared at float64
  round-off tolerance and the greedy argmax must match exactly;
* **OVP-packed caches** stay within quantization error: the next-token
  distribution is close in probability space, tighter at 8 than at 4 bits,
  and the greedy token stays inside the full-precision top-5.
"""

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.models.zoo import build_causal_lm
from repro.nn.attention import attend_padding_waste, bucket_by_length
from repro.serve.kvcache import KVCacheConfig, cache_for_model

TOTAL_LEN = 24


@pytest.fixture(scope="module")
def model():
    return build_causal_lm("gpt2-xl", seed=0)


def set_ragged_attend(model, mode):
    for i in range(model.backbone.num_layers):
        getattr(model.backbone, f"layer_{i}").self_attention.ragged_attend = mode


def stepwise_log_probs(model, tokens, prefix_len, config):
    """Prefill ``tokens[:prefix_len]`` then decode the rest one at a time."""
    cache = cache_for_model(model, config)
    log_probs = model.log_probs_incremental(tokens[None, :prefix_len], [cache])
    for position in range(prefix_len, tokens.size):
        log_probs = model.log_probs_incremental(
            np.array([[tokens[position]]]), [cache]
        )
    return log_probs[0, -1], cache


class TestFP32Equivalence:
    def test_one_shot_prefill_bitwise_equal(self, model):
        tokens = np.random.default_rng(0).integers(0, 96, size=TOTAL_LEN)
        full = model.log_probs(tokens[None])[0]
        cache = cache_for_model(model, KVCacheConfig(quantize=False))
        incremental = model.log_probs_incremental(tokens[None], [cache])[0]
        np.testing.assert_array_equal(incremental, full)

    @settings(max_examples=8, deadline=None, derandomize=True)
    @given(
        prefix_len=st.integers(min_value=1, max_value=TOTAL_LEN - 1),
        seed=st.integers(min_value=0, max_value=2**16),
        page_size=st.sampled_from([1, 3, 16]),
    )
    def test_stepwise_decode_exact_over_random_prefixes(
        self, model, prefix_len, seed, page_size
    ):
        tokens = np.random.default_rng(seed).integers(0, 96, size=TOTAL_LEN)
        full = model.log_probs(tokens[None])[0, -1]
        config = KVCacheConfig(quantize=False, page_size=page_size)
        incremental, cache = stepwise_log_probs(model, tokens, prefix_len, config)
        assert cache.seq_len == TOTAL_LEN
        np.testing.assert_allclose(incremental, full, rtol=1e-9, atol=1e-12)
        assert int(np.argmax(incremental)) == int(np.argmax(full))

    def test_greedy_generation_matches_full_recompute(self, model):
        """Token-by-token generation: cached decode = full-prefix recompute."""
        rng = np.random.default_rng(3)
        tokens = list(rng.integers(0, 96, size=8))
        cache = cache_for_model(model, KVCacheConfig(quantize=False, page_size=4))
        log_probs = model.log_probs_incremental(np.array(tokens)[None], [cache])
        cached_tokens = []
        for _ in range(12):
            nxt = int(np.argmax(log_probs[0, -1]))
            cached_tokens.append(nxt)
            log_probs = model.log_probs_incremental(np.array([[nxt]]), [cache])
        full_tokens, prefix = [], list(tokens)
        for _ in range(12):
            nxt = int(np.argmax(model.log_probs(np.array(prefix)[None])[0, -1]))
            full_tokens.append(nxt)
            prefix.append(nxt)
        assert cached_tokens == full_tokens


class TestPackedEquivalence:
    """Packed caches stay within quantization error of full recompute.

    OVP zeroes the victim partner of every outlier, so the distortion is
    real but bounded; the bounds below hold with ≥ 2× margin on the fixed
    seed set, aggregated over ten random (prefix, sequence) draws.
    """

    @pytest.fixture(scope="class")
    def packed_errors(self, model):
        errors = {}
        for bits in (4, 8):
            diffs, top5_hits = [], 0
            for seed in range(10):
                rng = np.random.default_rng(seed)
                prefix_len = int(rng.integers(1, TOTAL_LEN))
                tokens = rng.integers(0, 96, size=TOTAL_LEN)
                full = model.log_probs(tokens[None])[0, -1]
                packed, cache = stepwise_log_probs(
                    model, tokens, prefix_len, KVCacheConfig(bits=bits, page_size=4)
                )
                assert cache.compression_ratio > 1.0
                diffs.append(float(np.max(np.abs(np.exp(packed) - np.exp(full)))))
                top5 = set(np.argsort(full)[::-1][:5].tolist())
                top5_hits += int(np.argmax(packed)) in top5
            errors[bits] = (diffs, top5_hits)
        return errors

    def test_4bit_within_quantization_error(self, packed_errors):
        diffs, top5_hits = packed_errors[4]
        assert float(np.mean(diffs)) < 0.45
        assert top5_hits >= 8  # greedy token almost always inside fp top-5

    def test_8bit_within_quantization_error(self, packed_errors):
        diffs, top5_hits = packed_errors[8]
        assert max(diffs) < 0.45
        assert float(np.mean(diffs)) < 0.15
        assert top5_hits >= 9

    def test_fidelity_improves_with_bits(self, packed_errors):
        assert float(np.mean(packed_errors[8][0])) < float(np.mean(packed_errors[4][0]))


class TestIncrementalAPI:
    def test_decoder_layer_rejects_cross_attention(self, model):
        from repro.nn.transformer import TransformerDecoderLayer

        layer = TransformerDecoderLayer(32, 4, 64, cross_attention=True)
        with pytest.raises(ValueError):
            layer.forward_incremental(np.zeros((1, 1, 32)), [None])

    def test_cache_count_must_match_rows(self, model):
        cache = cache_for_model(model, KVCacheConfig(quantize=False))
        tokens = np.zeros((2, 4), dtype=np.int64)
        with pytest.raises(ValueError):
            model.backbone.forward_incremental(tokens, [cache])

    def test_position_overflow_raises(self, model):
        cache = cache_for_model(model, KVCacheConfig(quantize=False))
        max_positions = model.config.max_positions
        tokens = np.zeros((1, max_positions), dtype=np.int64)
        model.backbone.forward_incremental(tokens, [cache])
        with pytest.raises(ValueError):
            model.backbone.forward_incremental(
                np.zeros((1, 1), dtype=np.int64), [cache]
            )

    def test_bucketing_groups_by_power_of_two(self):
        buckets = bucket_by_length([5, 11, 19, 500, 16], min_bucket=16)
        assert buckets == [([0, 1, 4], 16), ([2], 19), ([3], 500)]

    def test_uniform_lengths_collapse_to_one_bucket(self):
        assert bucket_by_length([37, 37, 37]) == [([0, 1, 2], 37)]

    def test_padding_waste_accounting(self):
        padded, bucketed = attend_padding_waste([16, 16, 512], min_bucket=16)
        assert padded == pytest.approx(1 - 544 / 1536)
        assert bucketed == pytest.approx(0.0)
        uniform_padded, uniform_bucketed = attend_padding_waste([40, 40])
        assert uniform_padded == uniform_bucketed == pytest.approx(0.0)

    @settings(max_examples=6, deadline=None, derandomize=True)
    @given(
        lengths=st.lists(st.integers(min_value=1, max_value=50), min_size=2, max_size=6),
        quantize=st.booleans(),
        seed=st.integers(min_value=0, max_value=2**16),
    )
    def test_bucketed_attend_matches_padded_oracle(self, model, lengths, quantize, seed):
        """Property: the length-bucketed decode round equals the padded oracle.

        Both kernels attend the same decoded pages with the same masked
        columns; only the GEMM padding width differs, so logits agree to
        float64 round-off (BLAS kernels may reduce in a different order) and
        the greedy token matches exactly — quantized and reference mode.
        """
        rng = np.random.default_rng(seed)
        prompts = [rng.integers(0, 96, size=n) for n in lengths]
        config = KVCacheConfig(bits=4, page_size=4, quantize=quantize)

        def decode_round(mode):
            caches = []
            for prompt in prompts:
                cache = cache_for_model(model, config)
                model.log_probs_incremental(prompt[None], [cache])
                caches.append(cache)
            step = rng.integers(0, 96, size=(len(prompts), 1))
            set_ragged_attend(model, mode)
            try:
                return model.log_probs_incremental(step, caches)
            finally:
                set_ragged_attend(model, "bucketed")

        rng_state = rng.bit_generator.state
        bucketed = decode_round("bucketed")
        rng.bit_generator.state = rng_state  # same step tokens for the oracle
        padded = decode_round("padded")
        np.testing.assert_allclose(bucketed, padded, rtol=1e-9, atol=1e-12)
        np.testing.assert_array_equal(
            bucketed[:, -1].argmax(axis=-1), padded[:, -1].argmax(axis=-1)
        )

    def test_pool_decode_reuse_is_bitwise_equal_to_redecode(self, model):
        """The decoded-page LRU must change nothing: logits with the pool
        cache enabled are bitwise identical to re-decoding every round."""
        tokens = np.random.default_rng(21).integers(0, 96, size=TOTAL_LEN)
        logits = {}
        for mb in (64.0, 0.0):  # decode-once pool vs re-decode baseline
            config = KVCacheConfig(bits=4, page_size=4, pool_decoded_mb=mb)
            logits[mb], cache = stepwise_log_probs(model, tokens, 8, config)
            hits = cache.pool.decode_hits
            assert hits > 0 if mb else hits == 0
        np.testing.assert_array_equal(logits[64.0], logits[0.0])

    def test_ragged_decode_round_matches_per_sequence(self, model):
        """A batched decode round over ragged slots equals row-by-row decode."""
        rng = np.random.default_rng(9)
        prompts = [rng.integers(0, 96, size=n) for n in (5, 11, 19)]
        config = KVCacheConfig(quantize=False, page_size=4)
        batched_caches = []
        for prompt in prompts:
            cache = cache_for_model(model, config)
            model.log_probs_incremental(prompt[None], [cache])
            batched_caches.append(cache)
        step_tokens = np.array([[1], [2], [3]], dtype=np.int64)
        batched = model.log_probs_incremental(step_tokens, batched_caches)
        for row, prompt in enumerate(prompts):
            cache = cache_for_model(model, config)
            model.log_probs_incremental(prompt[None], [cache])
            single = model.log_probs_incremental(step_tokens[row][None], [cache])
            np.testing.assert_allclose(
                batched[row], single[0], rtol=1e-9, atol=1e-12
            )


class TestMultiTokenRound:
    """The speculative verify round: ``m`` tokens per slot through the
    batched ragged kernel (``batched_rounds=True``)."""

    def _prefilled(self, model, prompts, config):
        caches = []
        for prompt in prompts:
            cache = cache_for_model(model, config)
            model.log_probs_incremental(prompt[None], [cache])
            caches.append(cache)
        return caches

    def test_m1_explicit_flag_bitwise_equal_to_auto_dispatch(self, model):
        """batched_rounds=True with one token per slot IS the decode round."""
        rng = np.random.default_rng(11)
        prompts = [rng.integers(0, 96, size=n) for n in (5, 12, 20)]
        config = KVCacheConfig(bits=4, page_size=4)
        step = rng.integers(0, 96, size=(3, 1))
        auto = model.log_probs_incremental(step, self._prefilled(model, prompts, config))
        explicit = model.log_probs_incremental(
            step, self._prefilled(model, prompts, config), batched_rounds=True
        )
        np.testing.assert_array_equal(explicit, auto)

    @settings(max_examples=6, deadline=None, derandomize=True)
    @given(
        lengths=st.lists(st.integers(min_value=1, max_value=40), min_size=1, max_size=5),
        m=st.integers(min_value=2, max_value=5),
        quantize=st.booleans(),
        seed=st.integers(min_value=0, max_value=2**16),
    )
    def test_multi_token_round_matches_per_sequence_loop(
        self, model, lengths, m, quantize, seed
    ):
        """Property: an m-token batched round equals the per-sequence loop.

        Same appends, same causal visibility — only the GEMM batching
        differs, so logits agree to float64 round-off and greedy tokens
        match exactly, in quantized and reference cache modes."""
        rng = np.random.default_rng(seed)
        prompts = [rng.integers(0, 96, size=n) for n in lengths]
        config = KVCacheConfig(bits=4, page_size=4, quantize=quantize)
        step = rng.integers(0, 96, size=(len(prompts), m))
        batched = model.log_probs_incremental(
            step, self._prefilled(model, prompts, config), batched_rounds=True
        )
        looped = model.log_probs_incremental(
            step, self._prefilled(model, prompts, config), batched_rounds=False
        )
        np.testing.assert_allclose(batched, looped, rtol=1e-9, atol=1e-12)
        np.testing.assert_array_equal(
            batched.argmax(axis=-1), looped.argmax(axis=-1)
        )

    def test_multi_token_round_padded_oracle_agrees(self, model):
        rng = np.random.default_rng(13)
        prompts = [rng.integers(0, 96, size=n) for n in (4, 18, 9)]
        config = KVCacheConfig(bits=4, page_size=4)
        step = rng.integers(0, 96, size=(3, 4))
        bucketed = model.log_probs_incremental(
            step, self._prefilled(model, prompts, config), batched_rounds=True
        )
        set_ragged_attend(model, "padded")
        try:
            padded = model.log_probs_incremental(
                step, self._prefilled(model, prompts, config), batched_rounds=True
            )
        finally:
            set_ragged_attend(model, "bucketed")
        np.testing.assert_allclose(bucketed, padded, rtol=1e-9, atol=1e-12)
        np.testing.assert_array_equal(
            bucketed.argmax(axis=-1), padded.argmax(axis=-1)
        )

    def test_verify_then_rollback_continues_like_stepwise(self, model):
        """Feed m tokens, roll back to 1 kept, continue — matches stepwise."""
        rng = np.random.default_rng(17)
        prompt = rng.integers(0, 96, size=9)
        config = KVCacheConfig(quantize=False, page_size=4)
        speculative = cache_for_model(model, config)
        model.log_probs_incremental(prompt[None], [speculative])
        tokens = rng.integers(0, 96, size=4)
        speculative.hold_seals()
        verified = model.log_probs_incremental(
            tokens[None], [speculative], batched_rounds=True
        )
        speculative.truncate_to(10)  # keep tokens[0] only
        speculative.flush_seals()
        stepwise = cache_for_model(model, config)
        model.log_probs_incremental(prompt[None], [stepwise])
        single = model.log_probs_incremental(tokens[:1][None], [stepwise])
        np.testing.assert_allclose(
            verified[0, 0], single[0, -1], rtol=1e-9, atol=1e-12
        )
        follow = rng.integers(0, 96, size=(1, 1))
        after_rollback = model.log_probs_incremental(follow, [speculative])
        after_stepwise = model.log_probs_incremental(follow, [stepwise])
        np.testing.assert_allclose(
            after_rollback, after_stepwise, rtol=1e-9, atol=1e-12
        )
        assert speculative.seq_len == stepwise.seq_len == 11
