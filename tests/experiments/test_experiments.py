"""Tests for the per-table/figure experiment modules (small configurations)."""

import pytest

from repro.experiments.fig2_outliers import format_fig2, run_fig2
from repro.experiments.fig3_pruning import FIG3_METHODS, format_fig3, run_fig3
from repro.experiments.fig5_abfloat_error import format_fig5, run_fig5
from repro.experiments.fig9_gpu import format_fig9, run_fig9
from repro.experiments.fig10_accel import format_fig10, run_fig10
from repro.experiments.table2_pairs import format_table2, run_table2
from repro.experiments.table6_glue import format_table6, run_table6
from repro.experiments.table7_gobo import format_table7, run_table7
from repro.experiments.table8_squad import format_table8, run_table8
from repro.experiments.table9_llm import format_table9, run_table9
from repro.experiments.tables_area import (
    format_table10,
    format_table11,
    run_table10,
    run_table11,
)
from repro.experiments.runner import EXPERIMENTS, run_all


class TestMotivationExperiments:
    def test_fig2_transformer_outliers_dominate(self):
        result = run_fig2()
        assert result.max_sigma_ratio > 2.0
        assert "transformer_max_sigma" in format_fig2(result)

    def test_table2_pair_fractions(self):
        result = run_table2(models=("bert-base", "opt-6.7b"))
        for fractions in result.fractions().values():
            assert fractions["normal-normal"] > 0.95
            assert fractions["outlier-outlier"] < 0.01
        assert "normal-normal" in format_table2(result)

    def test_fig3_clipping_outliers_hurts_most(self):
        result = run_fig3(tasks=("SST-2",), num_examples=32, oversample=8)
        assert result.average_drop("clip-outlier") > result.average_drop("prune-victim")
        assert result.average_drop("clip-outlier") > result.average_drop("prune-normal")
        assert abs(result.average_drop("prune-victim")) < 15.0
        assert set(FIG3_METHODS) <= set(next(iter(result.scores.values())))
        assert "clip-outlier" in format_fig3(result)

    def test_fig5_e2m1_wins(self):
        result = run_fig5(models=("bert-base", "gpt2-xl"))
        assert result.best_overall() == "E2M1"
        assert "E2M1" in format_fig5(result)


class TestAccuracyExperiments:
    def test_table6_shape(self):
        result = run_table6(models=("bert-base",), tasks=("SST-2",),
                            schemes=("fp32", "olive-4bit", "int4"), num_examples=32)
        assert result.accuracy_drop("bert-base", "olive-4bit") < result.accuracy_drop("bert-base", "int4")
        assert "olive-4bit" in format_table6(result)

    def test_table7_runs(self):
        result = run_table7(tasks=("MNLI",), num_examples=32, oversample=8)
        scores = result.scores["MNLI"]
        assert scores["olive-4bit-weights"] > 0
        assert "gobo" in format_table7(result)

    def test_table8_f1_at_least_em(self):
        result = run_table8(models=("bert-base",), variants=("squad-v1.1",),
                            schemes=("fp32", "olive-4bit"), num_examples=16)
        for per_scheme in result.scores.values():
            for f1, em in per_scheme.values():
                assert f1 >= em
        assert "squad-v1.1" in format_table8(result)

    def test_table9_shape(self):
        result = run_table9(models=("gpt2-xl",), corpora=("wikitext",),
                            schemes=("fp32", "olive-8bit", "int4"), num_sequences=4)
        row = result.perplexities[("gpt2-xl", "wikitext")]
        assert row["fp32"] <= row["olive-8bit"] < row["int4"]
        assert "wikitext" in format_table9(result)


class TestHardwareExperiments:
    def test_fig9_geomeans(self):
        result = run_fig9(models=("bert-base", "gpt2-xl"))
        assert result.geomean_speedup("olive") > 3.0
        assert result.geomean_energy("olive") < 0.5
        assert "Speedup over GOBO" in format_fig9(result)

    def test_fig10_geomeans(self):
        result = run_fig10(models=("bert-base", "gpt2-xl"))
        assert result.geomean_speedup("olive") > 3.0
        assert result.geomean_energy("olive") < 0.5
        assert "AdaFloat" in format_fig10(result)

    def test_table10_overhead_below_one_percent(self):
        result = run_table10()
        assert result.total_overhead_ratio < 0.01
        assert "0.250%" in format_table10(result)

    def test_table11_decoder_overhead_small(self):
        result = run_table11()
        ratios = result.ratios()
        assert ratios["4-bit PE"] > 0.9
        assert ratios["4-bit decoder"] < 0.05
        assert "4-bit PE" in format_table11(result)


class TestRunner:
    def test_registry_covers_all_paper_results(self):
        assert set(EXPERIMENTS) == {
            "fig2", "table2", "fig3", "fig5", "table6", "table7", "table8",
            "table9", "fig9", "fig10", "table10", "table11",
        }

    def test_run_all_subset(self):
        report = run_all(quick=True, only=["fig2", "table10"])
        assert "## fig2" in report and "## table10" in report
