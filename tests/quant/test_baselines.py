"""Tests for the baseline quantizers (ANT, GOBO, OLAccel, AdaptivFloat, OS, Q8BERT, int)."""

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.quant import (
    AdaptivFloatQuantizer,
    AntMixedQuantizer,
    AntQuantizer,
    GoboQuantizer,
    Int4Quantizer,
    Int8Quantizer,
    OLAccelQuantizer,
    OutlierSuppressionQuantizer,
    Q8BertQuantizer,
    UniformQuantizer,
    available_quantizers,
    create_quantizer,
)


def _gaussian(seed=0, n=4096, sigma=1.0):
    return np.random.default_rng(seed).normal(0, sigma, size=n)


def _with_outliers(seed=0, n=4096, scale=40.0):
    x = _gaussian(seed, n)
    x[::256] *= scale
    return x


class TestUniform:
    def test_int8_much_better_than_int4_on_gaussian(self):
        x = _gaussian()
        assert Int8Quantizer().fit(x).quantization_mse(x) < Int4Quantizer().fit(x).quantization_mse(x) / 4

    def test_int4_degrades_badly_with_outliers(self):
        clean_mse = Int4Quantizer().fit(_gaussian()).quantization_mse(_gaussian())
        outlier_mse = Int4Quantizer().fit(_with_outliers()).quantization_mse(_with_outliers())
        assert outlier_mse > clean_mse * 5

    def test_invalid_bits(self):
        with pytest.raises(ValueError):
            UniformQuantizer(1)

    @given(st.integers(min_value=2, max_value=8), st.integers(min_value=0, max_value=1000))
    @settings(max_examples=40, deadline=None)
    def test_quantized_values_on_uniform_grid(self, bits, seed):
        x = _gaussian(seed, n=256)
        q = UniformQuantizer(bits)
        out = q.quantize(x)
        grid = np.round(out / q.scale)
        np.testing.assert_allclose(out, grid * q.scale, atol=1e-9)
        assert np.max(np.abs(grid)) <= (1 << (bits - 1)) - 1


class TestAnt:
    def test_selects_a_dtype(self):
        q = AntQuantizer(bits=4).fit(_gaussian())
        assert q.selected_dtype is not None
        assert q.selected_dtype.name in ("int4", "flint4")

    def test_flint_preferred_for_heavy_tailed(self):
        # A strongly heavy-tailed (Laplacian-like) tensor favours flint's log spacing.
        rng = np.random.default_rng(0)
        x = rng.laplace(0, 1.0, size=8192) ** 3
        q = AntQuantizer(bits=4).fit(x)
        assert q.selected_dtype.name == "flint4"

    def test_mixed_falls_back_to_8bit_on_outliers(self):
        q = AntMixedQuantizer(snr_threshold=20.0)
        q.fit(_with_outliers())
        assert q.selected_bits == 8

    def test_mixed_keeps_4bit_on_gaussian(self):
        q = AntMixedQuantizer(snr_threshold=10.0)
        q.fit(_gaussian())
        assert q.selected_bits == 4

    def test_invalid_bits(self):
        with pytest.raises(ValueError):
            AntQuantizer(bits=5)


class TestGobo:
    def test_outliers_kept_exact(self):
        x = _with_outliers(seed=1)
        q = GoboQuantizer(bits=3).fit(x)
        out = q.quantize(x)
        sigma = np.std(x)
        outlier_mask = np.abs(x - x.mean()) > 3 * sigma
        np.testing.assert_array_equal(out[outlier_mask], x[outlier_mask])

    def test_normals_snap_to_centroids(self):
        x = _with_outliers(seed=2)
        q = GoboQuantizer(bits=3).fit(x)
        out = q.quantize(x)
        normal_mask = np.abs(x - x.mean()) <= q.outlier_sigma * np.std(x)
        assert set(np.round(out[normal_mask], 9)).issubset(set(np.round(q.centroids, 9)))

    def test_centroid_count_bounded(self):
        q = GoboQuantizer(bits=3).fit(_gaussian(seed=3))
        assert len(q.centroids) <= 8

    def test_low_mse_despite_3_bits(self):
        x = _with_outliers(seed=4)
        assert GoboQuantizer(bits=3).fit(x).quantization_mse(x) < Int4Quantizer().fit(x).quantization_mse(x)

    def test_outlier_fraction_small(self):
        x = _with_outliers(seed=5)
        assert GoboQuantizer().fit(x).outlier_fraction(x) < 0.05

    def test_invalid_bits(self):
        with pytest.raises(ValueError):
            GoboQuantizer(bits=8)


class TestOLAccel:
    def test_outliers_get_higher_precision(self):
        x = _with_outliers(seed=6)
        q = OLAccelQuantizer().fit(x)
        out = q.quantize(x)
        outlier_mask = np.abs(x) > np.quantile(np.abs(x), 0.99)
        rel_err_outliers = np.abs(out[outlier_mask] - x[outlier_mask]) / np.abs(x[outlier_mask])
        assert np.mean(rel_err_outliers) < 0.05

    def test_better_than_int4_on_outlier_tensor(self):
        x = _with_outliers(seed=7)
        assert OLAccelQuantizer().fit(x).quantization_mse(x) < Int4Quantizer().fit(x).quantization_mse(x)


class TestAdaptivFloat:
    def test_bias_covers_max(self):
        x = _with_outliers(seed=8)
        q = AdaptivFloatQuantizer(bits=8).fit(x)
        out = q.quantize(x)
        assert np.max(np.abs(out)) <= np.max(np.abs(x)) * 1.1
        assert np.max(np.abs(out)) >= np.max(np.abs(x)) * 0.5

    def test_relative_error_bounded_for_large_values(self):
        x = _with_outliers(seed=9)
        q = AdaptivFloatQuantizer(bits=8).fit(x)
        out = q.quantize(x)
        big = np.abs(x) > np.std(x)
        rel = np.abs(out[big] - x[big]) / np.abs(x[big])
        assert np.max(rel) < 0.1

    def test_invalid_config(self):
        with pytest.raises(ValueError):
            AdaptivFloatQuantizer(bits=4, exp_bits=4)


class TestOutlierSuppressionAndQ8:
    def test_os6_better_than_os4(self):
        x = _with_outliers(seed=10)
        mse6 = OutlierSuppressionQuantizer(bits=6).fit(x).quantization_mse(x)
        mse4 = OutlierSuppressionQuantizer(bits=4).fit(x).quantization_mse(x)
        assert mse6 <= mse4

    def test_q8bert_ema_updates(self):
        q = Q8BertQuantizer(ema_decay=0.5)
        q.fit(_gaussian(seed=11))
        first = q.scale
        q.fit(_gaussian(seed=12, sigma=10.0))
        assert q.scale > first


class TestRegistry:
    def test_all_registered_quantizers_work(self):
        x = _with_outliers(seed=13, n=512)
        for name in available_quantizers():
            q = create_quantizer(name)
            q.fit(x)
            out = q.quantize(x)
            assert out.shape == x.shape
            assert np.all(np.isfinite(out))

    def test_unknown_name(self):
        with pytest.raises(KeyError):
            create_quantizer("fp4")
