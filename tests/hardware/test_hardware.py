"""Tests for the hardware substrate: decoders, MAC units, area, timing models."""

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.core.abfloat import ABFLOAT_E2M1
from repro.core.dtypes import INT4
from repro.core.errors import DecodingError, SimulationError
from repro.core.ovp import OVPairCodec
from repro.hardware.area import gpu_decoder_area, systolic_area_breakdown
from repro.hardware.config import SYSTOLIC_64X64, TURING_2080TI
from repro.hardware.decoder import ExponentIntegerPair, OVPDecoder
from repro.hardware.isa import MMA_S4, execute_mma_ovp, mma_ovp_for
from repro.hardware.mac import FourPEInt8Multiplier, Int32Accumulator, OliveMacUnit
from repro.hardware.memory import gemm_traffic
from repro.hardware.systolic import SystolicArrayModel
from repro.hardware.tensor_core import TensorCoreModel


class TestConfigs:
    def test_turing_table5_numbers(self):
        assert TURING_2080TI.num_sms == 68
        assert TURING_2080TI.total_tensor_cores == 544
        assert TURING_2080TI.fp16_multipliers == 34_816
        assert TURING_2080TI.int8_multipliers == 69_632
        assert TURING_2080TI.int4_multipliers == 139_264

    def test_throughput_scales_with_precision(self):
        assert TURING_2080TI.peak_macs_per_second(4) == 2 * TURING_2080TI.peak_macs_per_second(8)
        assert TURING_2080TI.peak_macs_per_second(8) == 2 * TURING_2080TI.peak_macs_per_second(16)

    def test_systolic_config(self):
        assert SYSTOLIC_64X64.num_pes == 4096
        assert SYSTOLIC_64X64.num_edge_decoders == 128
        assert SYSTOLIC_64X64.peak_macs_per_second(8) == SYSTOLIC_64X64.peak_macs_per_second(4) / 4


class TestOVPDecoder:
    def test_decoder_matches_codec(self):
        """The hardware decoder and the software codec must agree bit for bit."""
        codec = OVPairCodec(INT4, ABFLOAT_E2M1, bias=2)
        decoder = OVPDecoder(bits=4, bias=2)
        rng = np.random.default_rng(0)
        grid = rng.normal(0, 3, size=256)
        grid[::17] *= 20
        packed = codec.encode_tensor(grid, scale=1.0, threshold=7)
        hw_values = decoder.decode_stream_values(packed.data)
        sw_values = codec.decode_tensor(packed)
        np.testing.assert_allclose(hw_values[: sw_values.size], sw_values, atol=1e-9)

    def test_identifier_slot_decodes_to_zero(self):
        decoder = OVPDecoder(bits=4, bias=2)
        outlier, victim = decoder.decode_pair(0b0101, 0b1000)
        assert victim.value == 0
        assert outlier.value == 48  # the Sec. 4.2 worked example

    def test_decode_byte_nibble_order(self):
        decoder = OVPDecoder(bits=4, bias=2)
        a, b = decoder.decode_byte((0b0101 << 4) | 0b1000)
        assert (a.value, b.value) == (48, 0)

    def test_normal_values_have_zero_exponent(self):
        decoder = OVPDecoder(bits=4, bias=2)
        a, b = decoder.decode_pair(INT4.encode(3), INT4.encode(-5))
        assert (a.exponent, b.exponent) == (0, 0)
        assert (a.integer, b.integer) == (3, -5)

    def test_invalid_inputs(self):
        decoder = OVPDecoder(bits=4)
        with pytest.raises(DecodingError):
            decoder.decode_byte(300)
        with pytest.raises(DecodingError):
            OVPDecoder(bits=5)

    def test_area_lookup(self):
        assert OVPDecoder(bits=4).area_um2(22) == 37.22
        assert OVPDecoder(bits=8).area_um2(12) == 18.00


class TestMacUnits:
    def test_exponent_integer_multiply(self):
        # <2, 3> x <4, 2> = (3*2) << 6 = 384 (paper Sec. 4.4 algebra).
        a = ExponentIntegerPair(2, 3)
        b = ExponentIntegerPair(4, 2)
        assert OliveMacUnit.multiply(a, b) == 384

    def test_dot_product_matches_numpy(self):
        rng = np.random.default_rng(1)
        ints = rng.integers(-7, 8, size=16)
        exps = rng.integers(0, 3, size=16)
        lhs = [ExponentIntegerPair(int(e), int(i)) for e, i in zip(exps, ints)]
        rhs = [ExponentIntegerPair(0, int(i)) for i in ints]
        expected = int(np.sum((ints << exps) * ints))
        assert OliveMacUnit().dot_product(lhs, rhs) == expected

    def test_overflow_detection(self):
        with pytest.raises(SimulationError):
            OliveMacUnit.multiply(ExponentIntegerPair(20, 127), ExponentIntegerPair(20, 127))

    def test_accumulator_wraps_like_int32(self):
        acc = Int32Accumulator(value=2 ** 31 - 1)
        assert acc.add(1) == -(2 ** 31)

    @given(st.integers(min_value=-128, max_value=127), st.integers(min_value=-128, max_value=127))
    @settings(max_examples=200, deadline=None)
    def test_four_pe_int8_multiply_exact(self, x, y):
        """Paper Sec. 4.5: four 4-bit PEs reproduce the exact int8 product."""
        assert FourPEInt8Multiplier.multiply_int8(x, y) == x * y

    def test_four_pe_abfloat8(self):
        x = ExponentIntegerPair(3, 9)
        y = ExponentIntegerPair(2, -5)
        assert FourPEInt8Multiplier.multiply_abfloat8(x, y) == (9 * -5) << 5


class TestISA:
    def test_mnemonics(self):
        assert MMA_S4.render() == "mma.s32.s4.s4.s32"
        assert mma_ovp_for("int4", 2).render() == "mmaovp.s32.ovpi4.ovpi4.s32.s4"

    def test_execute_matches_software_dot_product(self):
        codec = OVPairCodec(INT4, ABFLOAT_E2M1, bias=2)
        rng = np.random.default_rng(2)
        a = rng.normal(0, 3, size=64)
        b = rng.normal(0, 3, size=64)
        a[::9] *= 15
        pa = codec.encode_tensor(a, scale=1.0, threshold=7)
        pb = codec.encode_tensor(b, scale=1.0, threshold=7)
        expected = int(np.round(np.dot(codec.decode_tensor(pa), codec.decode_tensor(pb))))
        result = execute_mma_ovp(mma_ovp_for("int4", 2), pa.data, pb.data)
        assert result == expected

    def test_non_ovp_instruction_rejected(self):
        with pytest.raises(SimulationError):
            execute_mma_ovp(MMA_S4, np.zeros(2, dtype=np.uint8), np.zeros(2, dtype=np.uint8))


class TestAreaTables:
    def test_table10_ratios(self):
        entries = gpu_decoder_area()
        ratios = {e.component: e.ratio_of(TURING_2080TI.die_area_mm2) for e in entries}
        assert ratios["4-bit decoder"] == pytest.approx(0.0025, rel=0.05)
        assert ratios["8-bit decoder"] == pytest.approx(0.00166, rel=0.05)

    def test_table11_pe_dominates(self):
        entries = systolic_area_breakdown()
        total = sum(e.total_mm2 for e in entries)
        pe = next(e for e in entries if e.component == "4-bit PE")
        assert pe.ratio_of(total) > 0.9


class TestTimingModels:
    def test_systolic_cycles_scale_with_work(self):
        model = SystolicArrayModel()
        small = model.gemm(64, 64, 64).cycles
        large = model.gemm(256, 64, 256).cycles
        assert large == pytest.approx(small * 16, rel=0.01)

    def test_8bit_uses_four_pes_and_slows_down(self):
        model = SystolicArrayModel()
        assert model.gemm(256, 256, 256, bits=8).cycles > model.gemm(256, 256, 256, bits=4).cycles

    def test_utilization_bounded(self):
        result = SystolicArrayModel().gemm(1024, 1024, 1024)
        assert 0 < result.utilization <= 1.0

    def test_invalid_gemm(self):
        with pytest.raises(SimulationError):
            SystolicArrayModel().gemm(0, 1, 1)

    def test_tensor_core_roofline(self):
        model = TensorCoreModel()
        traffic = gemm_traffic(4096, 4096, 4096, 0.5, 0.5)
        big = model.gemm(4096, 4096, 4096, 4, traffic)
        assert not big.is_memory_bound
        small_traffic = gemm_traffic(16, 4096, 4096, 2, 2)
        small = model.gemm(16, 4096, 4096, 16, small_traffic)
        assert small.is_memory_bound

    def test_lower_precision_never_slower(self):
        model = TensorCoreModel()
        t4 = model.gemm(2048, 2048, 2048, 4, gemm_traffic(2048, 2048, 2048, 0.5, 0.5)).seconds
        t8 = model.gemm(2048, 2048, 2048, 8, gemm_traffic(2048, 2048, 2048, 1, 1)).seconds
        t16 = model.gemm(2048, 2048, 2048, 16, gemm_traffic(2048, 2048, 2048, 2, 2)).seconds
        assert t4 < t8 < t16

    def test_traffic_index_overhead(self):
        base = gemm_traffic(128, 128, 128, 1, 1)
        inflated = gemm_traffic(128, 128, 128, 1, 1, index_overhead=0.1)
        assert inflated.dram_bytes == pytest.approx(base.dram_bytes * 1.1)
