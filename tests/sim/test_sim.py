"""Tests for the workload generator, execution schemes and end-to-end simulators."""

import pytest

from repro.core.errors import WorkloadError
from repro.sim import (
    ACCEL_SCHEMES,
    GPU_SCHEMES,
    build_workload,
    geometric_mean,
    simulate_accelerator_comparison,
    simulate_gpu_comparison,
    transformer_gemms,
)
from repro.models.configs import paper_config


class TestWorkloads:
    def test_bert_base_gemm_count(self):
        workload = build_workload("bert-base")
        # 12 layers × 6 GEMM kinds.
        assert len(workload.gemms) == 12 * 6

    def test_macs_scale_with_model_size(self):
        assert build_workload("bloom-7b1").total_macs > build_workload("gpt2-xl").total_macs
        assert build_workload("bert-large").total_macs > build_workload("bert-base").total_macs

    def test_default_batches_match_paper(self):
        # Paper Sec. 5.3: batch 16 for BERT-like models, 2 for GPT-like models.
        assert build_workload("bert-base").batch == 16
        assert build_workload("gpt2-xl").batch == 2

    def test_encoder_decoder_has_cross_attention_gemms(self):
        names = [g.name for g in build_workload("bart-base").gemms]
        assert any("cross" in n for n in names)

    def test_attention_gemms_marked_activation_only(self):
        workload = build_workload("bert-base")
        score_gemms = [g for g in workload.gemms if "attn_scores" in g.name]
        assert score_gemms and all(not g.weight_operand for g in score_gemms)

    def test_invalid_batch(self):
        with pytest.raises(WorkloadError):
            transformer_gemms(paper_config("bert-base"), batch=0, seq_len=128)


class TestSchemes:
    def test_gpu_schemes_cover_fig9(self):
        assert set(GPU_SCHEMES) == {"olive", "ant", "int8", "gobo"}

    def test_accel_schemes_cover_fig10(self):
        assert set(ACCEL_SCHEMES) == {"olive", "ant", "olaccel", "adafloat"}

    def test_olive_is_fully_4bit_and_aligned(self):
        olive = GPU_SCHEMES["olive"]
        assert olive.weight_bits == 4 and olive.activation_bits == 4
        assert olive.index_overhead == 0.0

    def test_gobo_computes_in_fp16(self):
        assert GPU_SCHEMES["gobo"].compute_bits == 16

    def test_ant_phases_sum_to_one(self):
        phases = GPU_SCHEMES["ant"].execution_phases()
        assert sum(p.fraction for p in phases) == pytest.approx(1.0)


class TestGeomean:
    def test_geometric_mean(self):
        assert geometric_mean([1.0, 4.0]) == pytest.approx(2.0)
        assert geometric_mean([]) == 0.0


class TestGpuComparison:
    @pytest.fixture(scope="class")
    def table(self):
        return simulate_gpu_comparison(models=("bert-base", "gpt2-xl"))

    def test_olive_fastest(self, table):
        speedups = table.speedup_table()["geomean"]
        assert speedups["olive"] > speedups["ant"] > 1.0
        assert speedups["olive"] > speedups["int8"] > 1.0
        assert speedups["gobo"] == pytest.approx(1.0)

    def test_paper_shape_olive_vs_gobo(self, table):
        """Fig. 9a: OliVe beats GOBO by a large factor (paper: 4.5x, here >3x)."""
        assert table.geomean_speedup("olive") > 3.0

    def test_olive_lowest_energy(self, table):
        energies = table.energy_table()["geomean"]
        assert energies["olive"] < energies["ant"] < 1.0
        assert energies["olive"] < energies["int8"] < 1.0

    def test_energy_breakdown_positive(self, table):
        result = table.results["bert-base"]["olive"]
        breakdown = result.energy.as_dict()
        assert all(v >= 0 for v in breakdown.values())
        assert breakdown["total"] > 0


class TestAcceleratorComparison:
    @pytest.fixture(scope="class")
    def table(self):
        return simulate_accelerator_comparison(models=("bert-base", "bloom-7b1"))

    def test_fig10_ordering(self, table):
        speedups = table.speedup_table()["geomean"]
        assert speedups["olive"] > speedups["olaccel"] > 1.0
        assert speedups["olive"] > speedups["ant"] > 1.0
        assert speedups["adafloat"] == pytest.approx(1.0)

    def test_olive_speedup_magnitude(self, table):
        """Fig. 10a: OliVe's advantage over AdaFloat is close to 4x (paper: 4.8x)."""
        assert 3.0 < table.geomean_speedup("olive") < 6.0

    def test_energy_ordering(self, table):
        energies = table.energy_table()["geomean"]
        assert energies["olive"] < energies["olaccel"] < energies["adafloat"]
        assert energies["olive"] < energies["ant"]
