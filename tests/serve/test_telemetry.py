"""Telemetry tests: metrics registry, tracer determinism, exporters, end-to-end.

The load-bearing guarantees are **determinism** (a fake clock yields
byte-identical exports across runs, so traces are diffable artifacts) and
**zero cost when off** (a disabled tracer records no events and allocates
nothing on the span hot path — the serving stack is instrumented
unconditionally, so the null path must be free).
"""

import asyncio
import json
import sys
import threading

import numpy as np
import pytest

from repro.serve import (
    AsyncServer,
    InferenceRequest,
    KVCacheConfig,
    ModelRepository,
    NULL_TRACER,
    SamplingParams,
    ServingEngine,
    SpeculativeConfig,
    Tracer,
    WorkloadFamily,
)
from repro.serve.stats import ServingStats
from repro.serve.telemetry import (
    MetricsRegistry,
    NullTracer,
    exponential_buckets,
    validate_chrome_trace,
)

MODEL = "gpt2-xl"
VOCAB = 96

TEST_SPEC = SpeculativeConfig(
    num_speculative_tokens=2,
    calibration_sequences=6,
    calibration_tokens=12,
    calibration_prompt_len=4,
)


class FakeClock:
    def __init__(self, now=100.0, tick=0.0):
        self.now = now
        self.tick = tick  # auto-advance per reading (keeps timestamps distinct)

    def __call__(self):
        value = self.now
        self.now += self.tick
        return value


def lm_requests(rng_seed, count=3, seq_len=6, max_new_tokens=8):
    rng = np.random.default_rng(rng_seed)
    return [
        InferenceRequest(
            MODEL,
            WorkloadFamily.LM,
            rng.integers(0, VOCAB, size=seq_len),
            sampling=SamplingParams(max_new_tokens=max_new_tokens),
        )
        for _ in range(count)
    ]


# --------------------------------------------------------------------------- #
# Metrics registry
# --------------------------------------------------------------------------- #
class TestExponentialBuckets:
    def test_bounds_are_geometric(self):
        assert exponential_buckets(1.0, 2.0, 4) == (1.0, 2.0, 4.0, 8.0)

    @pytest.mark.parametrize(
        "kwargs", [dict(start=0.0), dict(factor=1.0), dict(factor=0.5), dict(count=0)]
    )
    def test_bad_arguments_raise(self, kwargs):
        args = dict(start=1.0, factor=2.0, count=4)
        args.update(kwargs)
        with pytest.raises(ValueError):
            exponential_buckets(**args)


class TestCounter:
    def test_inc_and_value(self):
        counter = MetricsRegistry().counter("c_total")
        counter.inc()
        counter.inc(2.5)
        assert counter.value() == pytest.approx(3.5)

    def test_labels_partition_the_count(self):
        counter = MetricsRegistry().counter("c_total", labels=("reason",))
        counter.inc(reason="stop")
        counter.inc(reason="stop")
        counter.inc(reason="length")
        assert counter.value(reason="stop") == 2.0
        assert counter.value(reason="length") == 1.0
        assert counter.value(reason="aborted") == 0.0

    def test_negative_increment_raises(self):
        counter = MetricsRegistry().counter("c_total")
        with pytest.raises(ValueError):
            counter.inc(-1.0)

    def test_non_finite_increment_is_dropped(self):
        counter = MetricsRegistry().counter("c_total")
        counter.inc(float("nan"))
        counter.inc(float("inf"))
        assert counter.value() == 0.0

    def test_wrong_label_set_raises(self):
        counter = MetricsRegistry().counter("c_total", labels=("reason",))
        with pytest.raises(ValueError):
            counter.inc(model="x")
        with pytest.raises(ValueError):
            counter.inc()  # missing the declared label


class TestGauge:
    def test_set_overwrites(self):
        gauge = MetricsRegistry().gauge("g")
        gauge.set(4.0)
        gauge.set(2.0)
        assert gauge.value() == 2.0

    def test_non_finite_set_is_dropped(self):
        gauge = MetricsRegistry().gauge("g")
        gauge.set(1.0)
        gauge.set(float("nan"))
        assert gauge.value() == 1.0


class TestHistogram:
    def test_cumulative_bucket_counts(self):
        hist = MetricsRegistry().histogram("h", buckets=(1.0, 2.0, 4.0))
        for value in (0.5, 1.5, 3.0, 100.0):
            hist.observe(value)
        # bisect_left: a value equal to a bound lands in that bound's bucket.
        hist.observe(2.0)
        assert hist.bucket_counts() == (1, 3, 4, 5)
        assert hist.count == 5
        assert hist.sum == pytest.approx(0.5 + 1.5 + 3.0 + 100.0 + 2.0)

    def test_non_finite_observation_is_dropped(self):
        hist = MetricsRegistry().histogram("h", buckets=(1.0,))
        hist.observe(float("inf"))
        assert hist.count == 0

    def test_non_ascending_buckets_raise(self):
        registry = MetricsRegistry()
        with pytest.raises(ValueError):
            registry.histogram("h", buckets=(1.0, 1.0))
        with pytest.raises(ValueError):
            registry.histogram("h2", buckets=(2.0, 1.0))


class TestRegistry:
    def test_create_is_idempotent(self):
        registry = MetricsRegistry()
        first = registry.counter("c_total", help="help")
        second = registry.counter("c_total")
        assert first is second
        assert registry.get("c_total") is first
        assert registry.names() == ("c_total",)

    def test_kind_conflict_raises(self):
        registry = MetricsRegistry()
        registry.counter("m")
        with pytest.raises(ValueError):
            registry.gauge("m")
        with pytest.raises(ValueError):
            registry.histogram("m")

    def test_label_conflict_raises(self):
        registry = MetricsRegistry()
        registry.counter("m", labels=("a",))
        with pytest.raises(ValueError):
            registry.counter("m", labels=("b",))

    def test_bucket_conflict_raises(self):
        registry = MetricsRegistry()
        registry.histogram("h", buckets=(1.0, 2.0))
        with pytest.raises(ValueError):
            registry.histogram("h", buckets=(1.0, 3.0))

    def test_render_exposition_format(self):
        registry = MetricsRegistry()
        counter = registry.counter("req_total", help="Requests", labels=("reason",))
        counter.inc(3, reason="stop")
        hist = registry.histogram("lat_seconds", buckets=(0.1, 1.0))
        hist.observe(0.05)
        hist.observe(5.0)
        text = registry.render()
        lines = text.splitlines()
        assert "# HELP req_total Requests" in lines
        assert "# TYPE req_total counter" in lines
        assert 'req_total{reason="stop"} 3' in lines
        assert "# TYPE lat_seconds histogram" in lines
        assert 'lat_seconds_bucket{le="0.1"} 1' in lines
        assert 'lat_seconds_bucket{le="1"} 1' in lines
        assert 'lat_seconds_bucket{le="+Inf"} 2' in lines
        assert "lat_seconds_count 2" in lines
        assert text.endswith("\n")

    def test_render_escapes_label_values(self):
        registry = MetricsRegistry()
        registry.counter("c_total", labels=("name",)).inc(name='a"b\nc\\d')
        assert 'c_total{name="a\\"b\\nc\\\\d"} 1' in registry.render()

    def test_unlabeled_counter_renders_zero_before_first_inc(self):
        registry = MetricsRegistry()
        registry.counter("c_total")
        assert "c_total 0" in registry.render().splitlines()

    def test_shared_registry_merges_counts(self):
        # Two ServingStats over one registry = the sharded-worker rollup.
        registry = MetricsRegistry()
        worker_a = ServingStats(registry=registry)
        worker_b = ServingStats(registry=registry)
        assert worker_a.registry is worker_b.registry
        counter = registry.counter("serve_decode_rounds_total")
        before = counter.value()
        assert before == 0.0

    def test_concurrent_increments_do_not_drop(self):
        registry = MetricsRegistry()
        counter = registry.counter("c_total")
        hist = registry.histogram("h", buckets=(0.5,))

        def work():
            for _ in range(1000):
                counter.inc()
                hist.observe(0.1)

        threads = [threading.Thread(target=work) for _ in range(4)]
        for t in threads:
            t.start()
        for t in threads:
            t.join()
        assert counter.value() == 4000.0
        assert hist.count == 4000


# --------------------------------------------------------------------------- #
# Tracer core
# --------------------------------------------------------------------------- #
class TestTracerSpans:
    def test_nested_spans_reconstruct_parent_and_depth(self):
        clock = FakeClock(tick=1.0)
        tracer = Tracer(clock=clock)
        with tracer.span("round"):
            with tracer.span("attend", attrs={"bucket": 16}):
                pass
            with tracer.span("sample"):
                pass
        spans = tracer.spans()
        assert [s.name for s in spans] == ["round", "attend", "sample"]
        root, attend, sample = spans
        assert root.parent is None and root.depth == 0
        assert attend.parent == root.index and attend.depth == 1
        assert sample.parent == root.index and sample.depth == 1
        assert attend.attrs == {"bucket": 16}
        # tick=1: round opens at 100, attend 101..102, sample 103..104, round closes at 105
        assert root.start == 100.0 and root.end == 105.0 and root.duration == 5.0
        assert attend.duration == 1.0 and sample.duration == 1.0

    def test_open_span_has_no_end(self):
        tracer = Tracer(clock=FakeClock(tick=1.0))
        tracer.span("round").__enter__()
        (span,) = tracer.spans()
        assert span.end is None and span.duration == 0.0
        assert tracer.num_spans == 0

    def test_span_survives_exceptions(self):
        tracer = Tracer(clock=FakeClock(tick=1.0))
        with pytest.raises(RuntimeError):
            with tracer.span("round"):
                with tracer.span("attend"):
                    raise RuntimeError("boom")
        assert tracer.num_spans == 2
        assert all(s.end is not None for s in tracer.spans())

    def test_reset_clears_everything(self):
        tracer = Tracer(clock=FakeClock(tick=1.0))
        with tracer.span("round"):
            pass
        tracer.lifecycle_begin("r0", "queued")
        tracer.reset()
        assert tracer.num_spans == 0
        assert tracer.spans() == []
        assert tracer.lifecycles() == []

    def test_max_events_preserves_balance(self):
        tracer = Tracer(clock=FakeClock(tick=1.0), max_events=4)
        for _ in range(10):
            with tracer.span("round"):
                with tracer.span("attend"):
                    pass
        begins = sum(1 for s in tracer.spans())
        assert begins == tracer.num_spans == 2  # 4 events = 2 closed spans
        # A fresh span after suppression would still be suppressed (log full),
        # but the depth bookkeeping must not have drifted.
        assert tracer._depth == 0

    def test_disabled_tracer_records_nothing(self):
        tracer = Tracer(enabled=False)
        with tracer.span("round", attrs=None):
            with tracer.span("attend"):
                pass
        tracer.lifecycle_begin("r0", "queued")
        tracer.lifecycle_end("r0")
        assert tracer.num_spans == 0
        assert tracer.spans() == []
        assert tracer.lifecycles() == []
        tracer.enable()
        with tracer.span("round"):
            pass
        assert tracer.num_spans == 1

    def test_disabled_span_allocates_nothing(self):
        tracer = Tracer(enabled=False)
        for _ in range(64):  # warm up caches (method binding, loop ints)
            with tracer.span("x"):
                pass
        before = sys.getallocatedblocks()
        for _ in range(512):
            with tracer.span("x"):
                pass
        after = sys.getallocatedblocks()
        assert after - before <= 2  # shared _NULL_SPAN: no per-span objects

    def test_null_tracer_is_inert(self):
        assert NULL_TRACER.enabled is False
        assert isinstance(NULL_TRACER, NullTracer)
        with NULL_TRACER.span("round"):
            pass
        NULL_TRACER.lifecycle_begin("r0", "queued")
        NULL_TRACER.lifecycle_end("r0")
        NULL_TRACER.reset()
        assert NULL_TRACER.num_spans == 0
        assert NULL_TRACER.phase_report().rounds == 0
        assert NULL_TRACER.chrome_trace()["traceEvents"] == []
        assert NULL_TRACER.jsonl() == ""
        with pytest.raises(RuntimeError):
            NULL_TRACER.enable()


class TestLifecycle:
    def test_begin_end_records_phase(self):
        clock = FakeClock(tick=1.0)
        tracer = Tracer(clock=clock)
        tracer.lifecycle_begin("r0", "queued", {"model": MODEL})
        tracer.lifecycle_end("r0", {"reason": "stop"})
        ((track, name, start, end, attrs),) = tracer.lifecycles()
        assert (track, name) == ("r0", "queued")
        assert end - start == 1.0
        assert attrs == {"model": MODEL, "reason": "stop"}

    def test_begin_auto_closes_previous_phase(self):
        tracer = Tracer(clock=FakeClock(tick=1.0))
        tracer.lifecycle_begin("r0", "queued")
        tracer.lifecycle_begin("r0", "prefill")
        tracer.lifecycle_begin("r0", "decode")
        tracer.lifecycle_end("r0")
        names = [entry[1] for entry in tracer.lifecycles()]
        assert names == ["queued", "prefill", "decode"]
        # Phases tile the track: each begins one clock read after the
        # previous ended (the auto-close and the open each read the clock).
        entries = tracer.lifecycles()
        for prev, cur in zip(entries, entries[1:]):
            assert prev[3] <= cur[2] <= prev[3] + 1.0

    def test_end_without_open_phase_is_noop(self):
        tracer = Tracer(clock=FakeClock())
        tracer.lifecycle_end("never-began")
        assert tracer.lifecycles() == []

    def test_tracks_are_independent(self):
        tracer = Tracer(clock=FakeClock(tick=1.0))
        tracer.lifecycle_begin("r0", "decode")
        tracer.lifecycle_begin("r1", "queued")
        tracer.lifecycle_end("r0")
        assert [entry[0] for entry in tracer.lifecycles()] == ["r0"]
        tracer.lifecycle_end("r1")
        assert [entry[0] for entry in tracer.lifecycles()] == ["r0", "r1"]


# --------------------------------------------------------------------------- #
# Phase report
# --------------------------------------------------------------------------- #
class TestPhaseReport:
    def _build(self):
        clock = FakeClock(now=0.0)
        tracer = Tracer(clock=clock)
        # round [0, 10): a [1, 4) containing b [2, 3); c [5, 9).
        clock.now = 0.0
        with tracer.span("round"):
            clock.now = 1.0
            with tracer.span("a"):
                clock.now = 2.0
                with tracer.span("b"):
                    clock.now = 3.0
                clock.now = 4.0
            clock.now = 5.0
            with tracer.span("c"):
                clock.now = 9.0
            clock.now = 10.0
        return tracer

    def test_inclusive_exclusive_and_coverage(self):
        report = self._build().phase_report()
        assert report.rounds == 1
        assert report.round_ms == pytest.approx(10_000.0)
        # Coverage counts the round's *direct* children: a (3 s) + c (4 s).
        assert report.coverage == pytest.approx(0.7)
        rows = {row.name: row for row in report.rows}
        assert rows["a"].total_ms == pytest.approx(3000.0)
        assert rows["a"].self_ms == pytest.approx(2000.0)  # minus b's 1 s
        assert rows["b"].self_ms == pytest.approx(1000.0)
        assert rows["c"].self_ms == pytest.approx(4000.0)
        assert rows["c"].share == pytest.approx(0.4)
        # Widest self time first.
        assert [row.name for row in report.rows] == ["c", "a", "b"]

    def test_spans_outside_root_are_excluded(self):
        clock = FakeClock(now=0.0)
        tracer = Tracer(clock=clock)
        with tracer.span("calibrate"):  # not inside any "round"
            clock.now = 5.0
        with tracer.span("round"):
            clock.now = 7.0
        report = tracer.phase_report()
        assert report.rounds == 1
        assert report.round_ms == pytest.approx(2000.0)
        assert all(row.name != "calibrate" for row in report.rows)

    def test_as_dict_and_table_render(self):
        report = self._build().phase_report()
        payload = report.as_dict()
        assert payload["rounds"] == 1
        assert payload["phases"]["c"]["share"] == pytest.approx(0.4)
        json.dumps(payload)  # artifact-safe
        table = report.table()
        assert "named-phase coverage: 70.0%" in table
        assert table.splitlines()[2].startswith("c")

    def test_empty_tracer_reports_zero(self):
        report = Tracer(clock=FakeClock()).phase_report()
        assert report.rounds == 0
        assert report.round_ms == 0.0
        assert report.coverage == 0.0
        assert report.rows == ()


# --------------------------------------------------------------------------- #
# Exporters
# --------------------------------------------------------------------------- #
class TestExporters:
    def _traced(self):
        clock = FakeClock(now=50.0, tick=0.5)
        tracer = Tracer(clock=clock)
        tracer.lifecycle_begin("r0", "queued")
        with tracer.span("round"):
            with tracer.span("attend", attrs={"bucket": 8}):
                pass
        tracer.lifecycle_begin("r0", "decode")
        tracer.lifecycle_end("r0", {"reason": "stop"})
        return tracer

    def test_chrome_trace_validates_and_round_trips(self):
        trace = self._traced().chrome_trace()
        counts = validate_chrome_trace(json.dumps(trace))
        assert counts["B"] == counts["E"] == 2
        assert counts["X"] == 2  # two lifecycle phases
        assert counts["M"] == 2  # rounds track + one request track

    def test_chrome_trace_timestamps_are_relative_microseconds(self):
        trace = self._traced().chrome_trace()
        ts = [e["ts"] for e in trace["traceEvents"] if e["ph"] != "M"]
        assert min(ts) == 0.0  # epoch-relative
        assert max(ts) == pytest.approx(3.0e6)  # 6 clock ticks of 0.5 s

    def test_chrome_trace_drops_unmatched_open_spans(self):
        tracer = Tracer(clock=FakeClock(tick=1.0))
        tracer.span("round").__enter__()  # never closed
        with tracer.span("inner"):
            pass
        counts = validate_chrome_trace(json.dumps(tracer.chrome_trace()))
        assert counts["B"] == counts["E"] == 1

    def test_exports_are_byte_identical_across_runs(self):
        first, second = self._traced(), self._traced()
        assert json.dumps(first.chrome_trace(), sort_keys=True) == json.dumps(
            second.chrome_trace(), sort_keys=True
        )
        assert first.jsonl() == second.jsonl()

    def test_jsonl_one_object_per_span(self):
        lines = [json.loads(line) for line in self._traced().jsonl().splitlines()]
        kinds = [(line["type"], line["name"]) for line in lines]
        assert ("span", "round") in kinds
        assert ("span", "attend") in kinds
        assert ("lifecycle", "queued") in kinds
        assert ("lifecycle", "decode") in kinds
        attend = next(l for l in lines if l["name"] == "attend")
        assert attend["attrs"] == {"bucket": 8}

    def test_write_exporters(self, tmp_path):
        tracer = self._traced()
        trace_path = tmp_path / "trace.json"
        jsonl_path = tmp_path / "spans.jsonl"
        tracer.write_chrome_trace(trace_path)
        tracer.write_jsonl(jsonl_path)
        validate_chrome_trace(trace_path.read_text())
        assert jsonl_path.read_text() == tracer.jsonl()

    def test_validate_rejects_malformed_traces(self):
        with pytest.raises(ValueError):
            validate_chrome_trace("[]")  # no traceEvents object
        with pytest.raises(ValueError):
            validate_chrome_trace({"traceEvents": [{"ph": "Q", "ts": 0}]})
        with pytest.raises(ValueError):
            validate_chrome_trace(
                {"traceEvents": [{"ph": "B", "name": "a", "ts": 1.0, "tid": 0}]}
            )  # unbalanced
        with pytest.raises(ValueError):
            validate_chrome_trace(
                {
                    "traceEvents": [
                        {"ph": "B", "name": "a", "ts": 5.0, "tid": 0},
                        {"ph": "E", "ts": 1.0, "tid": 0},  # non-monotone
                    ]
                }
            )
        with pytest.raises(ValueError):
            validate_chrome_trace(
                {"traceEvents": [{"ph": "X", "name": "a", "ts": 0.0, "dur": -1.0}]}
            )


# --------------------------------------------------------------------------- #
# End-to-end through the serving stack
# --------------------------------------------------------------------------- #
@pytest.fixture(scope="module")
def traced_run():
    """One speculative serve() under a real-clock tracer, shared across tests."""
    tracer = Tracer()
    engine = ServingEngine(
        ModelRepository(bits=4, seed=0),
        num_slots=4,
        kv_cache_config=KVCacheConfig(bits=4, page_size=8),
        speculative=TEST_SPEC,
        tracer=tracer,
    )
    engine.warm(MODEL, WorkloadFamily.LM)
    engine.warm_speculative(MODEL)
    tracer.reset()  # profile serving, not the one-off calibration
    results = engine.serve(lm_requests(7, count=3, max_new_tokens=8))
    return engine, tracer, results


class TestEndToEnd:
    def test_round_spans_nest_the_speculative_phases(self, traced_run):
        _, tracer, _ = traced_run
        spans = tracer.spans()
        by_name = {}
        for span in spans:
            by_name.setdefault(span.name, []).append(span)
        for name in ("round", "admit", "draft_propose", "verify_batch",
                     "attend", "kv_append", "sample", "retire"):
            assert by_name.get(name), f"missing {name} spans"
        # Every verify_batch nests inside a round; kv_rollback inside sample.
        def ancestor_names(span):
            names = set()
            while span.parent is not None:
                span = spans[span.parent]
                names.add(span.name)
            return names

        for span in by_name["verify_batch"]:
            assert "round" in ancestor_names(span)
        for span in by_name.get("kv_rollback", []):
            assert {"sample", "verify_batch", "round"} <= ancestor_names(span)
        assert all(s.end is not None for s in spans)

    def test_request_lifecycles_cover_queued_prefill_decode(self, traced_run):
        _, tracer, results = traced_run
        phases = {}
        for track, name, start, end, attrs in tracer.lifecycles():
            phases.setdefault(track, []).append((name, start, end, attrs))
        assert len(phases) == len(results)
        for result in results:
            names = [p[0] for p in phases[result.request_id]]
            assert names == ["queued", "prefill", "decode"]
            final = phases[result.request_id][-1]
            assert final[3]["reason"] == result.output.finish_reason
            assert final[3]["tokens"] == len(result.output.token_ids)
            # Contiguous: each phase starts where the previous ended.
            spans = phases[result.request_id]
            for prev, cur in zip(spans, spans[1:]):
                assert cur[1] == pytest.approx(prev[2])

    def test_phase_report_covers_the_round_wall(self, traced_run):
        _, tracer, _ = traced_run
        report = tracer.phase_report()
        assert report.rounds > 0
        assert report.coverage >= 0.9  # acceptance criterion: >= 90 % named
        # Self times never exceed the round wall.
        assert sum(row.self_ms for row in report.rows) <= report.round_ms * 1.001

    def test_chrome_trace_round_trips_and_validates(self, traced_run):
        engine, _, _ = traced_run
        payload = json.dumps(engine.chrome_trace())
        counts = validate_chrome_trace(payload)
        assert counts["B"] == counts["E"] > 0
        assert counts["X"] > 0

    def test_metrics_text_matches_summary(self, traced_run):
        engine, _, results = traced_run
        summary = engine.stats.summary()
        text = engine.metrics_text()
        lines = text.splitlines()

        def sample(name):
            for line in lines:
                if line.startswith(name + " "):
                    return float(line.split()[-1])
            raise AssertionError(f"no sample {name!r} in metrics text")

        assert sample("serve_decode_rounds_total") == summary.decode_rounds
        assert sample("serve_generated_tokens_total") == summary.generated_tokens
        assert sample("serve_draft_proposed_tokens_total") == summary.draft_proposed_tokens
        assert sample("serve_draft_accepted_tokens_total") == summary.draft_accepted_tokens
        assert sample("serve_draft_acceptance_ratio") == pytest.approx(
            summary.draft_acceptance_rate
        )
        finished = sum(
            float(line.split()[-1])
            for line in lines
            if line.startswith("serve_requests_finished_total{")
        )
        assert finished == len(results)
        assert (
            'serve_requests_finished_total'
            '{reason="length",slo_class="default",tenant="-"}'
        ) in text
        assert "serve_ttft_seconds_bucket" in text
        assert "serve_request_latency_seconds_count" in text

    def test_untraced_engine_records_no_spans(self):
        engine = ServingEngine(
            ModelRepository(bits=4, seed=0),
            num_slots=2,
            kv_cache_config=KVCacheConfig(bits=4, page_size=8),
        )
        assert engine.tracer is NULL_TRACER
        results = engine.serve(lm_requests(11, count=2, max_new_tokens=4))
        assert all(r.output.finish_reason == "length" for r in results)
        assert engine.phase_report().rounds == 0
        assert engine.chrome_trace()["traceEvents"] == []

    def test_traced_and_untraced_streams_are_identical(self):
        def run(tracer):
            engine = ServingEngine(
                ModelRepository(bits=4, seed=0),
                num_slots=4,
                kv_cache_config=KVCacheConfig(bits=4, page_size=8),
                speculative=TEST_SPEC,
                tracer=tracer,
            )
            results = engine.serve(lm_requests(13, count=3, max_new_tokens=6))
            return [list(r.output.token_ids) for r in results]

        assert run(None) == run(Tracer())

    def test_cancelled_request_lifecycle_ends_aborted(self):
        tracer = Tracer()
        engine = ServingEngine(
            ModelRepository(bits=4, seed=0),
            num_slots=2,
            kv_cache_config=KVCacheConfig(bits=4, page_size=8),
            tracer=tracer,
        )
        (request,) = lm_requests(17, count=1, max_new_tokens=32)
        engine.submit(request)
        engine.step(force=True)  # admit + first round
        result = engine.cancel(request.request_id)
        assert result.output.finish_reason == "aborted"
        final = [entry for entry in tracer.lifecycles() if entry[0] == request.request_id][-1]
        assert final[4]["reason"] == "aborted"
        validate_chrome_trace(json.dumps(tracer.chrome_trace()))

    def test_async_server_exposes_metrics_and_phase_report(self):
        tracer = Tracer()
        engine = ServingEngine(
            ModelRepository(bits=4, seed=0),
            num_slots=2,
            kv_cache_config=KVCacheConfig(bits=4, page_size=8),
            tracer=tracer,
        )

        async def main():
            async with AsyncServer(engine) as server:
                (request,) = lm_requests(19, count=1, max_new_tokens=4)
                result = await server.infer(request)
                return result, server.metrics_text(), server.phase_report()

        result, text, report = asyncio.run(main())
        assert result.output.finish_reason == "length"
        assert "serve_decode_rounds_total" in text
        assert report.rounds > 0
