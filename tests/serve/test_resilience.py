"""Overload-resilience tests: admission control, deadlines, preemption.

Covers the :class:`~repro.serve.admission.AdmissionPolicy` surface end to
end — bounded queues with typed rejections, shed-on-burn-rate, request
deadlines and queue timeouts (terminal ``finish_reason="deadline"``),
priority admission ordering, and preemption with packed-page
evict/resume.  The load-bearing property is exactness: a preempted and
resumed request must produce **token-identical** output to an
uninterrupted run, in both packed-OVP and full-precision reference
caches, because resume re-attaches the victim's already-sealed pages via
the prefix index and re-prefills only the unsealed suffix.
"""

from collections import defaultdict

import numpy as np
import pytest

from repro.serve import (
    AdmissionPolicy,
    AdmissionRejectedError,
    ContinuousBatchingScheduler,
    FinishReason,
    InferenceRequest,
    KVCacheConfig,
    MicroBatcher,
    ModelRepository,
    QueueFullError,
    SamplingParams,
    ServingEngine,
    ServingError,
    ServingStats,
    Tracer,
    WorkloadFamily,
)
from repro.serve.faultinject import check_refcounts

MODEL = "gpt2-xl"
VOCAB = 96


@pytest.fixture(scope="module")
def repository():
    repo = ModelRepository(bits=4, seed=0)
    repo.get(MODEL, WorkloadFamily.LM)
    return repo


def packed_config(**kwargs):
    return KVCacheConfig(bits=4, page_size=4, prefix_sharing=True, **kwargs)


def lm_request(prompt, max_new_tokens=4, slo_class="default", seed=3, **kwargs):
    sampling_kwargs = {}
    if "temperature" in kwargs:
        sampling_kwargs["temperature"] = kwargs.pop("temperature")
    return InferenceRequest(
        MODEL,
        WorkloadFamily.LM,
        np.asarray(prompt),
        sampling=SamplingParams(
            max_new_tokens=max_new_tokens, seed=seed, **sampling_kwargs
        ),
        slo_class=slo_class,
        **kwargs,
    )


def drain(scheduler, limit=80):
    results = []
    for _ in range(limit):
        if not len(scheduler):
            return results
        results.extend(scheduler.step())
    raise AssertionError("scheduler did not drain")


class _ChunkLedger:
    """Stream discipline: gapless indices, exactly one terminal, then silence."""

    def __init__(self):
        self.expected = defaultdict(int)
        self.finished = {}

    def consume(self, chunks):
        for chunk in chunks:
            rid = chunk.request_id
            assert rid not in self.finished, f"{rid} spoke after its terminal"
            assert chunk.index == self.expected[rid]
            if chunk.is_token:
                self.expected[rid] += 1
            if chunk.finish_reason is not None:
                self.finished[rid] = chunk.finish_reason


# --------------------------------------------------------------------------- #
# AdmissionPolicy surface
# --------------------------------------------------------------------------- #
class TestAdmissionPolicy:
    def test_validation(self):
        with pytest.raises(ServingError):
            AdmissionPolicy(max_queue_depth=0)
        with pytest.raises(ServingError):
            AdmissionPolicy(queue_timeout_s=0.0)
        with pytest.raises(ServingError):
            AdmissionPolicy(class_priority={"": 1})
        with pytest.raises(ServingError):
            AdmissionPolicy(class_priority={"x": "high"})

    def test_priority_of_explicit_override_beats_class_map(self):
        policy = AdmissionPolicy(class_priority={"interactive": 5}, default_priority=1)
        by_class = lm_request(np.arange(4), slo_class="interactive")
        explicit = lm_request(np.arange(4), slo_class="interactive", priority=-3)
        unknown = lm_request(np.arange(4), slo_class="mystery")
        assert policy.priority_of(by_class) == 5
        assert policy.priority_of(explicit) == -3
        assert policy.priority_of(unknown) == 1

    def test_request_field_validation(self):
        with pytest.raises(ServingError):
            lm_request(np.arange(4), deadline_s=0.0)
        with pytest.raises(ServingError):
            lm_request(np.arange(4), deadline_s=-1.0)


# --------------------------------------------------------------------------- #
# Bounded queues
# --------------------------------------------------------------------------- #
class TestBoundedQueue:
    def test_scheduler_queue_full_is_typed_and_takes_no_references(self, repository):
        stats = ServingStats()
        scheduler = ContinuousBatchingScheduler(
            repository,
            num_slots=1,
            cache_config=packed_config(),
            stats=stats,
            admission=AdmissionPolicy(max_queue_depth=2),
        )
        for _ in range(2):
            scheduler.submit(lm_request(np.arange(5)))
        with pytest.raises(QueueFullError):
            scheduler.submit(lm_request(np.arange(5), slo_class="batch"))
        assert scheduler.rejected == 1
        # The rejection never touched slots, caches or the pool.
        assert scheduler.num_active == 0
        assert scheduler.page_pool.num_entries == 0
        counter = stats.registry.get("serve_requests_rejected_total")
        assert counter.value_sum(reason="queue_full", slo_class="batch") == 1
        # The bound is on the queue, not the system: draining readmits.
        drain(scheduler)
        scheduler.submit(lm_request(np.arange(5)))
        assert len(drain(scheduler)) == 1

    def test_queue_full_is_retryable(self):
        from repro.serve.errors import is_retryable

        assert is_retryable(QueueFullError("full"))
        assert is_retryable(AdmissionRejectedError("shed"))
        assert not is_retryable(ServingError("bad request"))

    def test_micro_batcher_bounded_depth(self):
        batcher = MicroBatcher(max_batch_size=4, max_wait=10.0, max_queue_depth=2)
        classify = [
            InferenceRequest(MODEL, WorkloadFamily.CLASSIFY, np.arange(6), num_classes=2)
            for _ in range(3)
        ]
        batcher.submit(classify[0])
        batcher.submit(classify[1])
        with pytest.raises(QueueFullError):
            batcher.submit(classify[2])
        assert len(batcher) == 2

    def test_engine_records_batcher_rejections(self, repository):
        engine = ServingEngine(
            repository,
            kv_cache_config=packed_config(),
            admission=AdmissionPolicy(max_queue_depth=1),
        )
        first = InferenceRequest(
            MODEL, WorkloadFamily.CLASSIFY, np.arange(6), num_classes=2
        )
        second = InferenceRequest(
            MODEL, WorkloadFamily.CLASSIFY, np.arange(6), num_classes=2
        )
        engine.submit(first)
        with pytest.raises(QueueFullError):
            engine.submit(second)
        counter = engine.stats.registry.get("serve_requests_rejected_total")
        assert counter.value_sum(reason="queue_full", slo_class="default") == 1


class _FakeMonitor:
    def __init__(self, firing):
        self.firing = firing


class TestShedOnBurnRate:
    def test_below_floor_traffic_sheds_while_alerts_fire(self, repository):
        stats = ServingStats()
        policy = AdmissionPolicy(
            class_priority={"interactive": 5},
            shed_on_burn_rate=True,
            shed_priority_floor=1,
        )
        scheduler = ContinuousBatchingScheduler(
            repository,
            num_slots=2,
            cache_config=packed_config(),
            stats=stats,
            admission=policy,
            health_monitor=_FakeMonitor(firing=True),
        )
        with pytest.raises(AdmissionRejectedError):
            scheduler.submit(lm_request(np.arange(5), slo_class="batch"))
        # Above-floor traffic still admits while shedding.
        scheduler.submit(lm_request(np.arange(5), slo_class="interactive"))
        assert scheduler.num_queued == 1
        counter = stats.registry.get("serve_requests_rejected_total")
        assert counter.value_sum(reason="shed", slo_class="batch") == 1

    def test_no_shedding_when_alerts_clear(self, repository):
        policy = AdmissionPolicy(shed_on_burn_rate=True, shed_priority_floor=1)
        scheduler = ContinuousBatchingScheduler(
            repository,
            num_slots=2,
            cache_config=packed_config(),
            admission=policy,
            health_monitor=_FakeMonitor(firing=False),
        )
        scheduler.submit(lm_request(np.arange(5), slo_class="batch"))
        assert scheduler.num_queued == 1


# --------------------------------------------------------------------------- #
# Deadlines and queue timeouts
# --------------------------------------------------------------------------- #
class TestDeadlines:
    def test_active_deadline_expires_mid_generation(self, repository):
        now = [0.0]
        stats = ServingStats(clock=lambda: now[0])
        scheduler = ContinuousBatchingScheduler(
            repository,
            num_slots=1,
            cache_config=packed_config(),
            clock=lambda: now[0],
            stats=stats,
        )
        request = lm_request(np.arange(6), max_new_tokens=50, deadline_s=3.0)
        scheduler.submit(request)
        ledger = _ChunkLedger()
        assert scheduler.step() == []
        ledger.consume(scheduler.take_chunks())
        now[0] = 4.0
        results = scheduler.step()
        ledger.consume(scheduler.take_chunks())
        assert [r.request_id for r in results] == [request.request_id]
        assert results[0].output.finish_reason == FinishReason.DEADLINE
        # Partial output is delivered, not discarded.
        assert len(results[0].output.token_ids) > 0
        assert ledger.finished[request.request_id] == FinishReason.DEADLINE
        assert scheduler.deadline_expired == 1
        assert scheduler.num_active == 0
        check_refcounts(scheduler)
        counter = stats.registry.get("serve_deadline_misses_total")
        assert counter.value(slo_class="default") == 1
        assert stats.summary().finish_deadline == 1

    def test_queue_timeout_expires_waiting_request(self, repository):
        now = [0.0]
        scheduler = ContinuousBatchingScheduler(
            repository,
            num_slots=1,
            cache_config=packed_config(),
            clock=lambda: now[0],
            admission=AdmissionPolicy(queue_timeout_s=5.0),
        )
        hog = lm_request(np.arange(6), max_new_tokens=50)
        waiter = lm_request(np.arange(4), max_new_tokens=2)
        scheduler.submit(hog)
        scheduler.submit(waiter)
        assert scheduler.step() == []
        now[0] = 6.0
        results = scheduler.step()
        assert [r.request_id for r in results] == [waiter.request_id]
        assert results[0].output.finish_reason == FinishReason.DEADLINE
        assert results[0].output.token_ids == []
        # Terminal chunk at index 0: the stream never produced a token.
        chunks = [c for c in scheduler.take_chunks() if c.request_id == waiter.request_id]
        assert len(chunks) == 1 and chunks[0].index == 0
        assert chunks[0].finish_reason == FinishReason.DEADLINE
        # The hog keeps generating — expiry freed nothing it holds.
        assert scheduler.num_active == 1
        scheduler.cancel(hog.request_id)
        check_refcounts(scheduler)

    def test_deadline_expired_in_queue_before_any_slot(self, repository):
        now = [0.0]
        scheduler = ContinuousBatchingScheduler(
            repository,
            num_slots=1,
            cache_config=packed_config(),
            clock=lambda: now[0],
        )
        hog = lm_request(np.arange(6), max_new_tokens=50)
        doomed = lm_request(np.arange(4), deadline_s=1.0)
        scheduler.submit(hog)
        scheduler.submit(doomed)
        now[0] = 2.0
        results = scheduler.step()
        assert [r.request_id for r in results] == [doomed.request_id]
        assert results[0].output.finish_reason == FinishReason.DEADLINE
        assert scheduler.page_pool.num_entries >= 0
        scheduler.cancel(hog.request_id)
        check_refcounts(scheduler)


# --------------------------------------------------------------------------- #
# Priority admission and preemption
# --------------------------------------------------------------------------- #
def preemption_policy():
    return AdmissionPolicy(
        class_priority={"interactive": 10, "batch": 0}, preempt=True
    )


class TestPriorityAdmission:
    def test_higher_priority_jumps_the_queue(self, repository):
        scheduler = ContinuousBatchingScheduler(
            repository,
            num_slots=1,
            cache_config=packed_config(),
            admission=AdmissionPolicy(class_priority={"interactive": 10}),
        )
        hog = lm_request(np.arange(6), max_new_tokens=3)
        batch = lm_request(np.arange(5), slo_class="batch", max_new_tokens=2)
        gold = lm_request(np.arange(4), slo_class="interactive", max_new_tokens=2)
        scheduler.submit(hog)
        scheduler.step()  # hog takes the slot
        scheduler.submit(batch)
        scheduler.submit(gold)
        order = [r.request_id for r in drain(scheduler)]
        # Without preempt=True the hog finishes first, then gold outranks batch.
        assert order.index(gold.request_id) < order.index(batch.request_id)

    def test_no_preemption_without_flag(self, repository):
        scheduler = ContinuousBatchingScheduler(
            repository,
            num_slots=1,
            cache_config=packed_config(),
            admission=AdmissionPolicy(class_priority={"interactive": 10}),
        )
        scheduler.submit(lm_request(np.arange(6), slo_class="batch", max_new_tokens=6))
        scheduler.step()
        scheduler.submit(lm_request(np.arange(4), slo_class="interactive"))
        drain(scheduler)
        assert scheduler.preempted == 0

    def test_equal_priority_never_preempts(self, repository):
        scheduler = ContinuousBatchingScheduler(
            repository,
            num_slots=1,
            cache_config=packed_config(),
            admission=preemption_policy(),
        )
        scheduler.submit(lm_request(np.arange(6), slo_class="batch", max_new_tokens=6))
        scheduler.step()
        scheduler.submit(lm_request(np.arange(4), slo_class="batch"))
        drain(scheduler)
        assert scheduler.preempted == 0


class TestPreemptResume:
    @pytest.mark.parametrize("quantize", [True, False], ids=["packed", "fp32"])
    @pytest.mark.parametrize("temperature", [0.0, 0.9], ids=["greedy", "sampled"])
    def test_resume_is_token_identical(self, repository, quantize, temperature):
        cfg = packed_config(quantize=quantize)
        prompt_low = np.arange(9) % VOCAB
        prompt_high = (np.arange(5) + 40) % VOCAB

        def low():
            return lm_request(
                prompt_low, max_new_tokens=8, slo_class="batch",
                temperature=temperature,
            )

        baseline_scheduler = ContinuousBatchingScheduler(
            repository, num_slots=1, cache_config=cfg
        )
        baseline_scheduler.submit(low())
        baseline = drain(baseline_scheduler)[0]

        stats = ServingStats()
        scheduler = ContinuousBatchingScheduler(
            repository,
            num_slots=1,
            cache_config=cfg,
            stats=stats,
            admission=preemption_policy(),
        )
        victim = low()
        scheduler.submit(victim)
        ledger = _ChunkLedger()
        for _ in range(3):
            assert scheduler.step() == []
            ledger.consume(scheduler.take_chunks())
        tokens_before = ledger.expected[victim.request_id]
        assert tokens_before > 0
        scheduler.submit(lm_request(prompt_high, max_new_tokens=2, slo_class="interactive"))
        results = {}
        for _ in range(60):
            for result in scheduler.step():
                results[result.request_id] = result
            ledger.consume(scheduler.take_chunks())
            check_refcounts(scheduler)
            if not len(scheduler):
                break
        assert scheduler.preempted == 1
        resumed = results[victim.request_id]
        assert list(resumed.output.token_ids) == list(baseline.output.token_ids)
        assert resumed.output.finish_reason == baseline.output.finish_reason
        if quantize and temperature == 0.0:
            assert list(resumed.output.logprobs) == list(baseline.output.logprobs)
        # Resume re-attached the evicted sealed pages copy-on-write instead
        # of re-prefilling them.
        kv = resumed.output.kv_cache
        assert kv["prefix_shared_tokens"] > 0
        assert kv["shared_pages"] > 0
        assert any(
            record.prefix_pages_attached > 0 for _, record in stats._rounds
        )
        # Stream discipline held across the pause: one terminal per request,
        # indices gapless through the preemption.
        assert ledger.finished[victim.request_id] == baseline.output.finish_reason
        assert ledger.expected[victim.request_id] == len(baseline.output.token_ids)
        counter = stats.registry.get("serve_preemptions_total")
        assert counter.value(slo_class="batch") == 1
        assert stats.summary().preemptions == 1

    def test_victim_is_lowest_priority_youngest(self, repository):
        policy = AdmissionPolicy(
            class_priority={"interactive": 10, "batch": 0, "bulk": -5},
            preempt=True,
        )
        scheduler = ContinuousBatchingScheduler(
            repository, num_slots=2, cache_config=packed_config(), admission=policy
        )
        batch = lm_request(np.arange(6), slo_class="batch", max_new_tokens=8)
        bulk = lm_request(np.arange(5), slo_class="bulk", max_new_tokens=8)
        scheduler.submit(batch)
        scheduler.submit(bulk)
        scheduler.step()
        scheduler.submit(lm_request(np.arange(4), slo_class="interactive"))
        scheduler.step()
        assert scheduler.preempted == 1
        active = {
            slot.request.slo_class
            for slot in scheduler._slots
            if slot is not None
        }
        # bulk (priority -5) was evicted, batch (priority 0) kept its slot.
        assert active == {"batch", "interactive"}
        drain(scheduler)
        check_refcounts(scheduler)

    def test_cancel_while_preempted_in_queue(self, repository):
        scheduler = ContinuousBatchingScheduler(
            repository,
            num_slots=1,
            cache_config=packed_config(),
            admission=preemption_policy(),
        )
        victim = lm_request(np.arange(9), slo_class="batch", max_new_tokens=8)
        scheduler.submit(victim)
        ledger = _ChunkLedger()
        for _ in range(3):
            scheduler.step()
            ledger.consume(scheduler.take_chunks())
        scheduler.submit(lm_request(np.arange(5), slo_class="interactive", max_new_tokens=4))
        scheduler.step()
        ledger.consume(scheduler.take_chunks())
        assert scheduler.preempted == 1
        delivered = ledger.expected[victim.request_id]
        result = scheduler.cancel(victim.request_id)
        ledger.consume(scheduler.take_chunks())
        assert result.output.finish_reason == FinishReason.ABORTED
        # The tokens streamed before eviction are in the result, and the
        # terminal chunk lands exactly where the stream paused.
        assert len(result.output.token_ids) == delivered
        assert ledger.finished[victim.request_id] == FinishReason.ABORTED
        drain(scheduler)
        check_refcounts(scheduler)

    def test_preempted_request_deadline_spans_requeue(self, repository):
        now = [0.0]
        scheduler = ContinuousBatchingScheduler(
            repository,
            num_slots=1,
            cache_config=packed_config(),
            clock=lambda: now[0],
            admission=preemption_policy(),
        )
        victim = lm_request(
            np.arange(9), slo_class="batch", max_new_tokens=40, deadline_s=10.0
        )
        scheduler.submit(victim)
        scheduler.step()
        scheduler.submit(
            lm_request(np.arange(5), slo_class="interactive", max_new_tokens=50)
        )
        scheduler.step()
        assert scheduler.preempted == 1
        # The end-to-end deadline keeps ticking while re-queued.
        now[0] = 11.0
        results = scheduler.step()
        expired = [r for r in results if r.request_id == victim.request_id]
        assert expired and expired[0].output.finish_reason == FinishReason.DEADLINE
        assert len(expired[0].output.token_ids) > 0
        scheduler.cancel(
            next(s.request.request_id for s in scheduler._slots if s is not None)
        )
        check_refcounts(scheduler)


# --------------------------------------------------------------------------- #
# Satellite: bounded chunk-buffer eviction is observable
# --------------------------------------------------------------------------- #
class TestChunkEviction:
    def test_eviction_counts_and_traces(self, repository):
        tracer = Tracer()
        engine = ServingEngine(
            repository,
            kv_cache_config=packed_config(),
            num_slots=2,
            result_buffer=1,
            tracer=tracer,
        )
        for prompt in (np.arange(6), np.arange(5) + 20):
            engine.submit(lm_request(prompt, max_new_tokens=4))
        engine.run_until_idle()
        counter = engine.stats.registry.get("serve_stream_chunks_evicted_total")
        assert counter.value() > 0
        evicted = [s for s in tracer.spans() if s.name == "stream_evicted"]
        assert evicted and evicted[0].attrs["chunks"] > 0


# --------------------------------------------------------------------------- #
# Satellite: abort_active refcount and registry-mirror coverage
# --------------------------------------------------------------------------- #
class TestAbortActive:
    def test_mid_flight_abort_balances_pool_and_mirror(self, repository):
        stats = ServingStats()
        scheduler = ContinuousBatchingScheduler(
            repository,
            num_slots=2,
            cache_config=packed_config(),
            stats=stats,
        )
        ids = [
            scheduler.submit(lm_request(np.arange(7) + i, max_new_tokens=10))
            for i in range(2)
        ]
        for _ in range(3):
            scheduler.step()
        assert scheduler.num_active == 2
        boom = RuntimeError("mid-round failure")
        aborted = scheduler.abort_active(boom)
        assert sorted(aborted) == sorted(ids)
        assert scheduler.num_active == 0
        # Every page either died with its cache or lives under the prefix
        # index with a matching refcount — nothing leaked, nothing double-freed.
        check_refcounts(scheduler)
        failures = dict(scheduler.take_failures())
        assert set(failures) == set(ids)
        assert all(exc is boom for exc in failures.values())
        # Terminal "error" chunks, one per aborted stream.
        terminal = [c for c in scheduler.take_chunks() if c.finish_reason is not None]
        assert sorted(c.request_id for c in terminal) == sorted(ids)
        assert all(c.finish_reason == FinishReason.ERROR for c in terminal)
        # The pending finishes flush into the registry mirror on the next
        # (idle) step, and summary/mirror agree.
        scheduler.step()
        counter = stats.registry.get("serve_requests_finished_total")
        assert counter.value_sum(reason="error", slo_class="default") == 2
        assert stats.summary().finish_error == 2
        # The scheduler still serves.
        scheduler.submit(lm_request(np.arange(4), max_new_tokens=2))
        results = drain(scheduler)
        assert results[0].output.finish_reason in (
            FinishReason.STOP,
            FinishReason.LENGTH,
        )
        check_refcounts(scheduler)
