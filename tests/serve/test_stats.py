"""Serving-stats aggregation tests (synthetic batch records, fake clock)."""

import pytest

from repro.serve.stats import BatchRecord, ServingStats


class FakeClock:
    def __init__(self):
        self.now = 100.0

    def __call__(self):
        return self.now


def record(batch_size=4, compute=0.010, latencies=(0.011, 0.012, 0.013, 0.014)):
    return BatchRecord(
        batch_size=batch_size,
        max_batch_size=8,
        compute_seconds=compute,
        tokens=batch_size * 16,
        weight_stream_bytes=1000,
        dram_bytes=5000.0,
        latencies=latencies[:batch_size],
    )


class TestSummary:
    def test_empty_summary_is_zeroed(self):
        summary = ServingStats().summary()
        assert summary.requests == 0
        assert summary.throughput_rps == 0.0
        assert summary.latency_p95_ms == 0.0

    def test_aggregation(self):
        clock = FakeClock()
        stats = ServingStats(clock=clock)
        stats.record_batch(record())
        clock.now += 0.05
        stats.record_batch(record(batch_size=2, latencies=(0.020, 0.030)))
        summary = stats.summary()
        assert summary.requests == 6
        assert summary.batches == 2
        assert summary.tokens == 6 * 16
        assert summary.compute_seconds == pytest.approx(0.020)
        # Window: first record back-dates its compute time, then +0.05 s.
        assert summary.wall_seconds == pytest.approx(0.060)
        assert summary.throughput_rps == pytest.approx(6 / 0.060)
        assert summary.mean_batch_fill == pytest.approx((4 / 8 + 2 / 8) / 2)
        assert summary.weight_stream_bytes == 2000
        assert summary.dram_bytes == pytest.approx(10000.0)

    def test_percentiles_ordered(self):
        stats = ServingStats(clock=FakeClock())
        stats.record_batch(record(latencies=(0.001, 0.002, 0.003, 0.100)))
        summary = stats.summary()
        assert summary.latency_p50_ms < summary.latency_p95_ms
        assert summary.latency_mean_ms == pytest.approx(26.5)

    def test_record_window_is_bounded(self):
        clock = FakeClock()
        stats = ServingStats(clock=clock, max_records=3)
        for _ in range(10):
            clock.now += 0.01
            stats.record_batch(record(batch_size=2, latencies=(0.01, 0.02)))
        assert stats.num_batches == 3  # oldest evicted
        summary = stats.summary()
        assert summary.batches == 3
        assert summary.requests == 6
        # Window spans the three retained records only: 2 × 0.01 s gaps plus
        # the first retained record's compute time.
        assert summary.wall_seconds == pytest.approx(0.02 + 0.010)

    def test_reset_clears_window(self):
        stats = ServingStats(clock=FakeClock())
        stats.record_batch(record())
        stats.reset()
        assert stats.summary().requests == 0
        assert stats.num_batches == 0

    def test_as_dict_round_trips_fields(self):
        stats = ServingStats(clock=FakeClock())
        stats.record_batch(record())
        d = stats.summary().as_dict()
        assert d["requests"] == 4
        assert d["batches"] == 1
        assert d["mean_batch_fill"] == 0.5
