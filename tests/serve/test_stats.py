"""Serving-stats aggregation tests (synthetic batch records, fake clock)."""

import threading

import pytest

from repro.serve.stats import BatchRecord, ServingStats


class FakeClock:
    def __init__(self):
        self.now = 100.0

    def __call__(self):
        return self.now


def record(batch_size=4, compute=0.010, latencies=(0.011, 0.012, 0.013, 0.014)):
    return BatchRecord(
        batch_size=batch_size,
        max_batch_size=8,
        compute_seconds=compute,
        tokens=batch_size * 16,
        weight_stream_bytes=1000,
        dram_bytes=5000.0,
        latencies=latencies[:batch_size],
    )


class TestSummary:
    def test_empty_summary_is_zeroed(self):
        summary = ServingStats().summary()
        assert summary.requests == 0
        assert summary.throughput_rps == 0.0
        assert summary.latency_p95_ms == 0.0

    def test_aggregation(self):
        clock = FakeClock()
        stats = ServingStats(clock=clock)
        stats.record_batch(record())
        clock.now += 0.05
        stats.record_batch(record(batch_size=2, latencies=(0.020, 0.030)))
        summary = stats.summary()
        assert summary.requests == 6
        assert summary.batches == 2
        assert summary.tokens == 6 * 16
        assert summary.compute_seconds == pytest.approx(0.020)
        # Window: first record back-dates its compute time, then +0.05 s.
        assert summary.wall_seconds == pytest.approx(0.060)
        assert summary.throughput_rps == pytest.approx(6 / 0.060)
        assert summary.mean_batch_fill == pytest.approx((4 / 8 + 2 / 8) / 2)
        assert summary.weight_stream_bytes == 2000
        assert summary.dram_bytes == pytest.approx(10000.0)

    def test_percentiles_ordered(self):
        stats = ServingStats(clock=FakeClock())
        stats.record_batch(record(latencies=(0.001, 0.002, 0.003, 0.100)))
        summary = stats.summary()
        assert summary.latency_p50_ms < summary.latency_p95_ms
        assert summary.latency_mean_ms == pytest.approx(26.5)

    def test_record_window_is_bounded(self):
        clock = FakeClock()
        stats = ServingStats(clock=clock, max_records=3)
        for _ in range(10):
            clock.now += 0.01
            stats.record_batch(record(batch_size=2, latencies=(0.01, 0.02)))
        assert stats.num_batches == 3  # oldest evicted
        summary = stats.summary()
        assert summary.batches == 3
        assert summary.requests == 6
        # Window spans the three retained records only: 2 × 0.01 s gaps plus
        # the first retained record's compute time.
        assert summary.wall_seconds == pytest.approx(0.02 + 0.010)

    def test_reset_clears_window(self):
        stats = ServingStats(clock=FakeClock())
        stats.record_batch(record())
        stats.reset()
        assert stats.summary().requests == 0
        assert stats.num_batches == 0

    def test_as_dict_round_trips_fields(self):
        stats = ServingStats(clock=FakeClock())
        stats.record_batch(record())
        d = stats.summary().as_dict()
        assert d["requests"] == 4
        assert d["batches"] == 1
        assert d["mean_batch_fill"] == 0.5


class TestPercentileHardening:
    """Regression: percentile fields are NaN-free zeros and round
    consistently when no completed requests exist, and one non-finite
    measurement never poisons the window aggregates."""

    def _round(self, **overrides):
        from repro.serve.stats import DecodeRoundRecord

        base = dict(
            active_slots=2, num_slots=4, new_tokens=10, generated_tokens=2,
            compute_seconds=0.01, kv_cache_bytes=100, kv_fp32_bytes=800,
        )
        base.update(overrides)
        return DecodeRoundRecord(**base)

    @staticmethod
    def _assert_finite(summary):
        import json

        import numpy as np

        payload = summary.as_dict()
        for key, value in payload.items():
            if isinstance(value, float):
                assert np.isfinite(value), f"{key} is not finite: {value}"
        json.dumps(payload, allow_nan=False)  # raises on NaN/Inf

    def test_no_completed_requests_reports_exact_zero_percentiles(self):
        stats = ServingStats(clock=FakeClock())
        stats.record_decode_round(self._round())  # in-flight, nothing retired
        summary = stats.summary()
        for field in (
            "latency_mean_ms", "latency_p50_ms", "latency_p95_ms",
            "ttft_p50_ms", "ttft_p95_ms",
            "inter_token_p50_ms", "inter_token_p95_ms",
        ):
            value = getattr(summary, field)
            assert isinstance(value, float) and value == 0.0
        assert summary.requests == 0
        self._assert_finite(summary)

    def test_non_finite_measurements_do_not_poison_the_window(self):
        stats = ServingStats(clock=FakeClock())
        stats.record_decode_round(
            self._round(
                compute_seconds=float("nan"),
                latencies=(float("nan"), 0.02),
                first_token_seconds=(float("inf"), 0.001),
                inter_token_seconds=(float("nan"),),
            )
        )
        summary = stats.summary()
        self._assert_finite(summary)
        assert summary.requests == 1          # the finite latency survives
        assert summary.latency_p50_ms == pytest.approx(20.0)
        assert summary.ttft_p50_ms == pytest.approx(1.0)
        assert summary.inter_token_p50_ms == 0.0

    def test_non_finite_batch_compute_keeps_wall_finite(self):
        stats = ServingStats(clock=FakeClock())
        stats.record_batch(
            BatchRecord(
                batch_size=1, max_batch_size=4, compute_seconds=float("nan"),
                tokens=4, weight_stream_bytes=0, dram_bytes=0.0,
                latencies=(0.005,),
            )
        )
        summary = stats.summary()
        self._assert_finite(summary)
        assert summary.wall_seconds > 0.0


class TestThreadSafety:
    """Regression: recording and summarising from different threads must not
    corrupt the windows or the metrics registry — the async server reads
    ``metrics_text()`` from request handlers while the scheduler records."""

    def test_two_thread_hammer_record_vs_summary(self):
        from repro.serve.stats import DecodeRoundRecord

        stats = ServingStats()
        rounds = 500
        errors = []
        start = threading.Barrier(2)

        def writer():
            start.wait()
            try:
                for i in range(rounds):
                    stats.record_batch(record())
                    stats.record_decode_round(
                        DecodeRoundRecord(
                            active_slots=1 + i % 4, num_slots=4, new_tokens=4,
                            generated_tokens=4, compute_seconds=0.0001,
                            kv_cache_bytes=100, kv_fp32_bytes=800,
                            latencies=(0.01,), finish_reasons=("length",),
                            first_token_seconds=(0.001,),
                            inter_token_seconds=(0.0005,),
                        )
                    )
            except Exception as exc:  # pragma: no cover - failure path
                errors.append(exc)

        def reader():
            start.wait()
            try:
                for _ in range(rounds):
                    summary = stats.summary()
                    assert summary.requests >= 0
                    assert "serve_decode_rounds_total" in stats.metrics_text()
            except Exception as exc:  # pragma: no cover - failure path
                errors.append(exc)

        threads = [threading.Thread(target=writer), threading.Thread(target=reader)]
        for t in threads:
            t.start()
        for t in threads:
            t.join()
        assert not errors
        # Nothing dropped: the cumulative counters saw every round.
        registry = stats.registry
        assert registry.get("serve_decode_rounds_total").value() == rounds
        assert registry.get("serve_batches_total").value() == rounds
        assert registry.get("serve_requests_finished_total").value_sum(
            reason="length", slo_class="default"
        ) == rounds
        final = stats.summary()
        assert final.decode_rounds == stats.num_decode_rounds


class TestMetricsText:
    def test_metrics_text_tracks_summary(self):
        from repro.serve.stats import DecodeRoundRecord

        stats = ServingStats(clock=FakeClock())
        stats.record_batch(record())
        stats.record_decode_round(
            DecodeRoundRecord(
                active_slots=2, num_slots=4, new_tokens=6, generated_tokens=3,
                compute_seconds=0.01, kv_cache_bytes=128, kv_fp32_bytes=1024,
                pool_hits=3, pool_misses=1,
                draft_proposed_tokens=4, draft_accepted_tokens=2,
            )
        )
        text = stats.metrics_text()
        lines = text.splitlines()
        assert "serve_batches_total 1" in lines
        assert "serve_decode_rounds_total 1" in lines
        assert "serve_generated_tokens_total 3" in lines
        assert "serve_pool_hits_total 3" in lines
        assert "serve_kv_cache_bytes 128" in lines
        assert "serve_draft_acceptance_ratio 0.5" in lines
        assert "serve_pool_hit_rate 0.75" in lines

    def test_shared_registry_rolls_up_two_workers(self):
        from repro.serve.stats import DecodeRoundRecord
        from repro.serve.telemetry import MetricsRegistry

        registry = MetricsRegistry()
        workers = [ServingStats(registry=registry) for _ in range(2)]
        for worker in workers:
            worker.record_decode_round(
                DecodeRoundRecord(
                    active_slots=1, num_slots=2, new_tokens=2, generated_tokens=2,
                    compute_seconds=0.001, kv_cache_bytes=0, kv_fp32_bytes=0,
                )
            )
        assert registry.get("serve_decode_rounds_total").value() == 2
        # Each worker's windowed summary stays its own.
        assert all(w.summary().decode_rounds == 1 for w in workers)


class TestDraftCounters:
    def test_acceptance_rate_aggregates_over_rounds(self):
        from repro.serve.stats import DecodeRoundRecord

        stats = ServingStats(clock=FakeClock())
        for proposed, accepted in ((4, 3), (2, 0), (0, 0)):
            stats.record_decode_round(
                DecodeRoundRecord(
                    active_slots=1, num_slots=2, new_tokens=1, generated_tokens=1,
                    compute_seconds=0.001, kv_cache_bytes=0, kv_fp32_bytes=0,
                    draft_proposed_tokens=proposed, draft_accepted_tokens=accepted,
                )
            )
        summary = stats.summary()
        assert summary.draft_proposed_tokens == 6
        assert summary.draft_accepted_tokens == 3
        assert summary.draft_acceptance_rate == pytest.approx(0.5)
        assert summary.as_dict()["draft_acceptance_rate"] == pytest.approx(0.5)

    def test_acceptance_rate_zero_when_nothing_proposed(self):
        from repro.serve.stats import DecodeRoundRecord

        record = DecodeRoundRecord(
            active_slots=1, num_slots=2, new_tokens=1, generated_tokens=1,
            compute_seconds=0.001, kv_cache_bytes=0, kv_fp32_bytes=0,
        )
        assert record.draft_acceptance_rate == 0.0
        stats = ServingStats(clock=FakeClock())
        stats.record_decode_round(record)
        assert stats.summary().draft_acceptance_rate == 0.0
