"""Deterministic fault-injection harness tests and the seeded chaos suite.

The harness promise: a :class:`FaultSchedule` generated from a seed is
identical on every run, and under **every** schedule the scheduler keeps
its PR-5 invariants — each submitted request reaches exactly one terminal
outcome (result, recorded failure, or typed rejection), PagePool
refcounts balance against the enumerable holders, streams stay gapless
with a single terminal chunk, and the engine keeps serving afterwards.
The async half covers bounded retry with jittered backoff and the
structured propagation of scheduler-task errors.
"""

import asyncio
import os
from collections import Counter, defaultdict

import numpy as np
import pytest

from repro.serve import (
    AdmissionPolicy,
    AsyncServer,
    ContinuousBatchingScheduler,
    FaultInjector,
    FaultSchedule,
    FaultSpec,
    FinishReason,
    InferenceRequest,
    InjectedFault,
    KVCacheConfig,
    ModelRepository,
    QueueFullError,
    RetryPolicy,
    SamplingParams,
    ServingEngine,
    ServingError,
    ServingStats,
    WorkloadFamily,
)
from repro.serve.faultinject import check_refcounts, drive

MODEL = "gpt2-xl"
VOCAB = 96


@pytest.fixture(scope="module")
def repository():
    repo = ModelRepository(bits=4, seed=0)
    repo.get(MODEL, WorkloadFamily.LM)
    return repo


def packed_config():
    return KVCacheConfig(bits=4, page_size=4, prefix_sharing=True)


def lm_request(prompt, max_new_tokens=3, seed=0, **kwargs):
    return InferenceRequest(
        MODEL,
        WorkloadFamily.LM,
        np.asarray(prompt),
        sampling=SamplingParams(max_new_tokens=max_new_tokens, seed=seed),
        **kwargs,
    )


# --------------------------------------------------------------------------- #
# Specs and schedules
# --------------------------------------------------------------------------- #
class TestFaultSpec:
    def test_validation(self):
        with pytest.raises(ServingError):
            FaultSpec("meteor_strike")
        with pytest.raises(ServingError):
            FaultSpec("phase_error", at_count=0)
        with pytest.raises(ServingError):
            FaultSpec("clock_jump", jump_s=0.0)
        with pytest.raises(ServingError):
            FaultSpec("queue_burst", burst=0)

    def test_schedule_rejects_non_specs(self):
        with pytest.raises(ServingError):
            FaultSchedule(("not a spec",))


class TestScheduleDeterminism:
    def test_same_seed_same_schedule(self):
        for seed in range(20):
            a = FaultSchedule.generate(seed, num_faults=6)
            b = FaultSchedule.generate(seed, num_faults=6)
            assert a == b and len(a) == 6

    def test_seeds_produce_distinct_schedules(self):
        schedules = {FaultSchedule.generate(seed, num_faults=6) for seed in range(20)}
        assert len(schedules) > 1


# --------------------------------------------------------------------------- #
# Individual fault kinds through the seams
# --------------------------------------------------------------------------- #
class TestInjection:
    def test_phase_error_fires_at_exact_occurrence(self, repository):
        schedule = FaultSchedule((FaultSpec("phase_error", phase="round", at_count=2),))
        scheduler = ContinuousBatchingScheduler(
            repository, num_slots=2, cache_config=packed_config()
        )
        injector = FaultInjector(schedule).attach(scheduler)
        scheduler.submit(lm_request(np.arange(6), max_new_tokens=5))
        scheduler.step()  # round 1: clean
        with pytest.raises(InjectedFault):
            scheduler.step()  # round 2: injected
        assert [s.kind for s in injector.fired] == ["phase_error"]
        aborted = scheduler.abort_active(injector.fired[0] and InjectedFault("x"))
        assert len(aborted) == 1
        check_refcounts(scheduler)

    def test_pool_decode_error_fires_from_decode_funnel(self, repository):
        schedule = FaultSchedule((FaultSpec("pool_decode_error", at_count=1),))
        scheduler = ContinuousBatchingScheduler(
            repository, num_slots=1, cache_config=packed_config()
        )
        injector = FaultInjector(schedule).attach(scheduler)
        # A long prompt seals pages mid-prefill and attention reads them
        # back through decoded_many — the injection funnel — so the very
        # first decode call fails the prefill pass; the request must still
        # reach exactly one terminal outcome, as a recorded failure.
        request = lm_request(np.arange(9), max_new_tokens=6)
        report = drive(scheduler, injector, [request])
        assert [s.kind for s in injector.fired] == ["pool_decode_error"]
        failures = dict(report["failures"])
        assert set(failures) == {request.request_id}
        assert isinstance(failures[request.request_id], InjectedFault)
        assert not report["results"]
        check_refcounts(scheduler)

    def test_clock_jump_expires_deadlines(self, repository):
        schedule = FaultSchedule(
            (FaultSpec("clock_jump", phase="round", at_count=2, jump_s=60.0),)
        )
        scheduler = ContinuousBatchingScheduler(
            repository, num_slots=1, cache_config=packed_config()
        )
        injector = FaultInjector(schedule).attach(scheduler)
        request = lm_request(np.arange(6), max_new_tokens=40, deadline_s=30.0)
        report = drive(scheduler, injector, [request])
        assert [s.kind for s in injector.fired] == ["clock_jump"]
        assert len(report["results"]) == 1
        assert report["results"][0].output.finish_reason == FinishReason.DEADLINE
        check_refcounts(scheduler)

    def test_queue_burst_overflows_bounded_queue(self, repository):
        schedule = FaultSchedule((FaultSpec("queue_burst", at_count=1, burst=5),))
        scheduler = ContinuousBatchingScheduler(
            repository,
            num_slots=1,
            cache_config=packed_config(),
            admission=AdmissionPolicy(max_queue_depth=2),
        )
        injector = FaultInjector(schedule).attach(scheduler)
        requests = [lm_request(np.arange(4) + i, max_new_tokens=1) for i in range(6)]
        report = drive(scheduler, injector, requests)
        assert [s.kind for s in injector.fired] == ["queue_burst"]
        assert report["rejected"], "the burst must overflow the bounded queue"
        assert all(isinstance(e, QueueFullError) for _, e in report["rejected"])
        # Everyone not rejected finished.
        done = {r.request_id for r in report["results"]}
        rejected = {rid for rid, _ in report["rejected"]}
        assert done | rejected == {r.request_id for r in requests}
        assert not done & rejected
        check_refcounts(scheduler)

    def test_each_spec_fires_at_most_once(self, repository):
        schedule = FaultSchedule((FaultSpec("phase_error", phase="round", at_count=1),))
        scheduler = ContinuousBatchingScheduler(
            repository, num_slots=1, cache_config=packed_config()
        )
        injector = FaultInjector(schedule).attach(scheduler)
        report = drive(scheduler, injector, [lm_request(np.arange(5))])
        assert len(injector.fired) == 1
        # After absorbing the one-shot fault the request was re-recorded as a
        # failure; nothing is left in flight and later rounds ran clean.
        assert report["rounds"] >= 1
        assert len(scheduler) == 0


# --------------------------------------------------------------------------- #
# The seeded chaos suite
# --------------------------------------------------------------------------- #
# Tier-1 replays seeds [0, 10) so CI is reproducible; the non-blocking CI
# chaos job widens the sweep and shifts the base per run via CHAOS_SEEDS /
# CHAOS_SEED_BASE.  The seed lands in the test id, so any failure replays
# exactly with ``-k "[<seed>]"``.
_CHAOS_BASE = int(os.environ.get("CHAOS_SEED_BASE", "0"))
_CHAOS_SEEDS = range(_CHAOS_BASE, _CHAOS_BASE + int(os.environ.get("CHAOS_SEEDS", "10")))


class TestChaosSuite:
    @pytest.mark.parametrize("seed", _CHAOS_SEEDS)
    def test_invariants_hold_under_every_schedule(self, repository, seed):
        rng = np.random.default_rng(seed)
        policy = AdmissionPolicy(
            max_queue_depth=4,
            queue_timeout_s=30.0,
            class_priority={"interactive": 5},
            preempt=True,
        )
        scheduler = ContinuousBatchingScheduler(
            repository,
            num_slots=2,
            cache_config=packed_config(),
            stats=ServingStats(),
            admission=policy,
        )
        injector = FaultInjector(FaultSchedule.generate(seed, num_faults=4))
        injector.attach(scheduler)
        requests = [
            lm_request(
                rng.integers(0, VOCAB, size=int(rng.integers(2, 9))),
                max_new_tokens=int(rng.integers(1, 5)),
                seed=seed,
                slo_class="interactive" if rng.integers(0, 2) else "batch",
                deadline_s=60.0 if rng.integers(0, 3) == 0 else None,
            )
            for _ in range(6)
        ]
        chunks = []
        original_step = scheduler.step

        def step_and_collect():
            results = original_step()
            chunks.extend(scheduler.take_chunks())
            check_refcounts(scheduler)
            return results

        scheduler.step = step_and_collect
        report = drive(scheduler, injector, requests)
        check_refcounts(scheduler)

        # Exactly one terminal outcome per submitted request.
        outcomes = Counter()
        for result in report["results"]:
            outcomes[result.request_id] += 1
        for rid, _ in report["failures"]:
            outcomes[rid] += 1
        for rid, _ in report["rejected"]:
            outcomes[rid] += 1
        assert set(outcomes) == {r.request_id for r in requests}
        assert all(count == 1 for count in outcomes.values()), dict(outcomes)

        # Streams: gapless indices, at most one terminal chunk per request.
        index = defaultdict(int)
        terminals = Counter()
        for chunk in chunks:
            assert chunk.index == index[chunk.request_id]
            if chunk.is_token:
                index[chunk.request_id] += 1
            if chunk.finish_reason is not None:
                terminals[chunk.request_id] += 1
        assert all(count == 1 for count in terminals.values())

        # The scheduler still serves after the chaos.  Cancel whatever part
        # of the schedule never fired first — the probe checks recovery, not
        # behaviour under yet another fault.
        injector.disarm()
        probe = lm_request(np.arange(4), max_new_tokens=2)
        scheduler.submit(probe)
        survived = []
        for _ in range(20):
            try:
                survived.extend(original_step())
            except InjectedFault as exc:
                scheduler.abort_active(exc)
            if not len(scheduler):
                break
        assert [r.request_id for r in survived] == [probe.request_id]

    def test_engine_absorbs_injected_faults_and_keeps_serving(self, repository):
        engine = ServingEngine(
            repository, kv_cache_config=packed_config(), num_slots=2
        )
        schedule = FaultSchedule(
            (
                FaultSpec("phase_error", phase="sample", at_count=2),
                FaultSpec("pool_decode_error", at_count=3),
            )
        )
        injector = FaultInjector(schedule).attach(engine.lm_scheduler)
        ids = [
            engine.submit(lm_request(np.arange(7) + i, max_new_tokens=6))
            for i in range(2)
        ]
        engine.run_until_idle()
        assert len(injector.fired) >= 1
        failed = [rid for rid in ids if rid in engine._failed]
        assert failed, "the injected mid-round fault must surface as failures"
        for rid in failed:
            with pytest.raises(ServingError):
                engine.result(rid)
        check_refcounts(engine.lm_scheduler)
        # Mirror consistency after the faults: finished counter equals the
        # summary's reasons, error count matches the aborted requests.
        summary = engine.stats.summary()
        counter = engine.stats.registry.get("serve_requests_finished_total")
        mirrored = {
            reason: counter.value_sum(reason=reason, slo_class="default")
            for reason in ("stop", "length", "aborted", "error", "deadline")
        }
        assert mirrored == summary.finish_reasons
        assert mirrored["error"] == len(failed)
        # Still serving.
        probe = engine.submit(lm_request(np.arange(4), max_new_tokens=2))
        engine.run_until_idle()
        assert engine.result(probe).output.finish_reason in ("stop", "length")


# --------------------------------------------------------------------------- #
# Async retry and structured scheduler-error propagation
# --------------------------------------------------------------------------- #
class TestAsyncRetry:
    def test_retry_absorbs_bounded_queue_overflow(self, repository):
        async def main():
            engine = ServingEngine(
                repository,
                kv_cache_config=packed_config(),
                num_slots=2,
                admission=AdmissionPolicy(max_queue_depth=1),
            )
            retry = RetryPolicy(max_retries=6, backoff_base_s=0.001, seed=7)
            async with AsyncServer(engine, retry=retry) as server:
                requests = [
                    lm_request(np.arange(5) + i, max_new_tokens=2) for i in range(5)
                ]
                results = await asyncio.gather(
                    *(server.infer(r) for r in requests), return_exceptions=True
                )
            return results

        results = asyncio.run(main())
        errors = [r for r in results if isinstance(r, Exception)]
        assert not errors, [type(e).__name__ for e in errors]
        assert len(results) == 5

    def test_retry_budget_exhaustion_chains_the_cause(self, repository):
        async def main():
            engine = ServingEngine(
                repository, kv_cache_config=packed_config(), num_slots=1
            )

            def always_full(request):
                raise QueueFullError("queue stays full")

            engine.submit = always_full
            retry = RetryPolicy(max_retries=2, backoff_base_s=0.0)
            async with AsyncServer(engine, retry=retry) as server:
                with pytest.raises(ServingError) as info:
                    await server.infer(lm_request(np.arange(4)))
                assert isinstance(info.value.__cause__, QueueFullError)
                assert server.in_flight == 0
                assert not server._attempts and not server._requests

        asyncio.run(main())

    def test_terminal_errors_never_retry(self, repository):
        async def main():
            engine = ServingEngine(
                repository, kv_cache_config=packed_config(), num_slots=1
            )
            calls = []
            original = engine.submit

            def failing(request):
                calls.append(request.request_id)
                raise ServingError("malformed")

            engine.submit = failing
            retry = RetryPolicy(max_retries=5, backoff_base_s=0.0)
            async with AsyncServer(engine, retry=retry) as server:
                with pytest.raises(ServingError):
                    await server.infer(lm_request(np.arange(4)))
            engine.submit = original
            return calls

        calls = asyncio.run(main())
        assert len(calls) == 1, "terminal errors must not consume retry budget"

    def test_streaming_requests_never_retry(self, repository):
        async def main():
            engine = ServingEngine(
                repository, kv_cache_config=packed_config(), num_slots=1
            )
            calls = []
            original = engine.submit

            def always_full(request):
                calls.append(request.request_id)
                raise QueueFullError("queue stays full")

            retry = RetryPolicy(max_retries=5, backoff_base_s=0.001)
            async with AsyncServer(engine, retry=retry) as server:
                engine.submit = always_full
                # The same retryable rejection that infer() would absorb
                # surfaces immediately on the streaming path, unretried.
                with pytest.raises(QueueFullError):
                    async for _ in server.stream(lm_request(np.arange(4))):
                        pass
                engine.submit = original
            return calls

        calls = asyncio.run(main())
        assert len(calls) == 1, "streams must not consume retry budget"

    def test_scheduler_error_propagates_structured(self, repository):
        """Satellite: the scheduler task must fail futures, not strand them."""

        async def main():
            engine = ServingEngine(
                repository, kv_cache_config=packed_config(), num_slots=1
            )
            boom = RuntimeError("loop blew up")

            def broken_next_wait():
                raise boom

            async with AsyncServer(engine) as server:
                engine.batcher.next_wait = broken_next_wait
                with pytest.raises(ServingError) as info:
                    await server.infer(lm_request(np.arange(4)))
                assert "serving scheduler error" in str(info.value)
                assert info.value.__cause__ is boom
                assert server.in_flight == 0

        asyncio.run(main())

    def test_jittered_backoff_is_seeded_and_bounded(self):
        policy = RetryPolicy(
            max_retries=3, backoff_base_s=0.01, backoff_multiplier=2.0, jitter=0.5
        )
        a = [policy.delay_for(n, np.random.default_rng(0)) for n in range(3)]
        b = [policy.delay_for(n, np.random.default_rng(0)) for n in range(3)]
        assert a == b, "same seed, same jitter"
        for attempt, delay in enumerate(a):
            base = 0.01 * 2.0 ** attempt
            assert base <= delay <= base * 1.5
        with pytest.raises(ServingError):
            RetryPolicy(max_retries=-1)
        with pytest.raises(ServingError):
            RetryPolicy(backoff_multiplier=0.5)
