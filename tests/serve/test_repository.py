"""Model-repository tests: quantize-once caching and packed-weight integrity."""

import numpy as np
import pytest

from repro.core.quantizer import OVPQuantizerConfig, OVPTensorQuantizer
from repro.nn.layers import Linear
from repro.serve.repository import ModelRepository
from repro.serve.requests import ServingError, WorkloadFamily


@pytest.fixture(scope="module")
def repo():
    return ModelRepository(bits=4, seed=0)


class TestCaching:
    def test_second_get_is_a_cache_hit(self, repo):
        repo.clear()
        first = repo.get("bert-base", WorkloadFamily.CLASSIFY)
        second = repo.get("bert-base", WorkloadFamily.CLASSIFY)
        assert first is second
        assert repo.stats.hits >= 1

    def test_families_cached_independently(self, repo):
        classify = repo.get("bert-base", WorkloadFamily.CLASSIFY)
        span = repo.get("bert-base", WorkloadFamily.SPAN)
        assert classify is not span
        assert classify.family == WorkloadFamily.CLASSIFY
        assert span.family == WorkloadFamily.SPAN

    def test_num_classes_distinguishes_classifiers(self, repo):
        two = repo.get("bert-base", WorkloadFamily.CLASSIFY, num_classes=2)
        three = repo.get("bert-base", WorkloadFamily.CLASSIFY, num_classes=3)
        assert two is not three

    def test_evict_and_clear(self):
        repo = ModelRepository(bits=4)
        repo.get("bert-base", WorkloadFamily.CLASSIFY)
        assert repo.evict("bert-base", WorkloadFamily.CLASSIFY)
        assert not repo.evict("bert-base", WorkloadFamily.CLASSIFY)
        repo.get("bert-base", WorkloadFamily.CLASSIFY)
        repo.clear()
        assert repo.cached_entries() == []

    def test_lru_eviction_bound(self):
        repo = ModelRepository(bits=4, max_entries=2)
        repo.get("bert-base", WorkloadFamily.CLASSIFY)
        repo.get("bert-base", WorkloadFamily.SPAN)
        repo.get("gpt2-xl", WorkloadFamily.LM)
        entries = repo.cached_entries()
        assert len(entries) == 2
        # The classify entry was least recently used and must be gone.
        assert {(e.name, e.family) for e in entries} == {
            ("bert-base", WorkloadFamily.SPAN),
            ("gpt2-xl", WorkloadFamily.LM),
        }

    def test_unknown_family_rejected(self, repo):
        with pytest.raises(ServingError):
            repo.get("bert-base", "poetry")

    def test_bad_bits_rejected(self):
        with pytest.raises(ServingError):
            ModelRepository(bits=6)


class TestPackedWeights:
    def test_every_linear_weight_is_packed(self, repo):
        entry = repo.get("bert-base", WorkloadFamily.CLASSIFY)
        linears = [
            name for name, m in entry.model.named_modules() if isinstance(m, Linear)
        ]
        assert len(entry.packed_weights) == len(linears)
        assert entry.num_weight_tensors == len(linears)

    def test_packed_footprint_is_one_nibble_per_element(self, repo):
        entry = repo.get("bert-base", WorkloadFamily.CLASSIFY)
        for name, packed in entry.packed_weights.items():
            # Memory-aligned 4-bit OVP: half a byte per element (odd lengths
            # round up by one pair).
            assert packed.nbytes == (packed.num_elements + 1) // 2

    def test_compression_ratio_near_8x(self, repo):
        entry = repo.get("bert-base", WorkloadFamily.CLASSIFY)
        assert 7.5 <= entry.compression_ratio <= 8.5

    def test_served_weights_equal_decoded_streams(self, repo):
        """The model serves exactly what the packed bytes decode to."""
        entry = repo.get("bert-base", WorkloadFamily.CLASSIFY)
        quantizer = OVPTensorQuantizer(
            OVPQuantizerConfig(normal_dtype="int4", search_points=repo.search_points)
        )
        for module_name, module in entry.model.named_modules():
            if not isinstance(module, Linear):
                continue
            weight_name = f"{module_name}.weight" if module_name else "weight"
            packed = entry.packed_weights[weight_name]
            decoded = quantizer.codec.decode_tensor(packed)
            np.testing.assert_allclose(module.weight.data, decoded, atol=1e-12)
            break  # one deep layer is enough; the loop is O(model)

    def test_deterministic_rebuild(self):
        a = ModelRepository(bits=4, seed=0).get("bert-base", WorkloadFamily.CLASSIFY)
        b = ModelRepository(bits=4, seed=0).get("bert-base", WorkloadFamily.CLASSIFY)
        key = next(iter(a.packed_weights))
        np.testing.assert_array_equal(a.packed_weights[key].data, b.packed_weights[key].data)

    def test_8bit_repository(self):
        repo = ModelRepository(bits=8)
        entry = repo.get("bert-base", WorkloadFamily.CLASSIFY)
        assert entry.scheme == "olive-8bit"
        packed = next(iter(entry.packed_weights.values()))
        assert packed.nbytes == packed.num_elements  # one byte per element
