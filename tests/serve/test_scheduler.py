"""Continuous-batching scheduler tests: admit/retire, wiring, failures."""

import numpy as np
import pytest

from repro.serve.engine import ServingEngine
from repro.serve.kvcache import KVCacheConfig
from repro.serve.repository import ModelRepository
from repro.serve.requests import InferenceRequest, ServingError, WorkloadFamily
from repro.serve.scheduler import ContinuousBatchingScheduler


@pytest.fixture(scope="module")
def repo():
    repository = ModelRepository(bits=4, seed=0)
    repository.get("gpt2-xl", WorkloadFamily.LM)  # warm once for the module
    return repository


def gen_request(seq_len=8, max_new_tokens=4, seed=0, model="gpt2-xl", **kwargs):
    rng = np.random.default_rng(seed)
    return InferenceRequest(
        model,
        WorkloadFamily.LM,
        rng.integers(0, 96, size=seq_len),
        max_new_tokens=max_new_tokens,
        **kwargs,
    )


class TestRequestValidation:
    def test_generation_requires_lm_family(self):
        with pytest.raises(ServingError):
            InferenceRequest(
                "bert-base", WorkloadFamily.CLASSIFY, [1, 2], max_new_tokens=3
            )

    def test_negative_max_new_tokens_rejected(self):
        with pytest.raises(ServingError):
            InferenceRequest("gpt2-xl", WorkloadFamily.LM, [1, 2], max_new_tokens=-1)

    def test_scheduler_rejects_score_only_requests(self, repo):
        scheduler = ContinuousBatchingScheduler(repo, num_slots=2)
        with pytest.raises(ServingError):
            scheduler.submit(gen_request(max_new_tokens=0))


class TestSlotLifecycle:
    def test_admit_decode_retire(self, repo):
        scheduler = ContinuousBatchingScheduler(repo, num_slots=2)
        for seed, tokens in enumerate((1, 3, 2)):
            scheduler.submit(gen_request(max_new_tokens=tokens, seed=seed))
        assert scheduler.num_queued == 3 and scheduler.num_active == 0

        first = scheduler.step()  # admits 2, prefill = first token each
        # The 1-token request completes straight from prefill and retires.
        assert [len(r.output["generated_tokens"]) for r in first] == [1]
        assert scheduler.num_active == 1  # 3-token request still decoding
        assert scheduler.num_queued == 1

        second = scheduler.step()  # backfills the freed slot mid-flight
        assert scheduler.num_active == 2
        assert second == []

        remaining = scheduler.run_until_idle()
        assert len(remaining) == 2
        assert len(scheduler) == 0
        assert scheduler.retired == 3
        lengths = {r.request_id: len(r.output["generated_tokens"]) for r in first + remaining}
        assert sorted(lengths.values()) == [1, 2, 3]

    def test_generated_tokens_match_whole_batch_release(self, repo):
        requests = [gen_request(max_new_tokens=n, seed=n) for n in (6, 2, 4, 3, 5)]
        continuous = ServingEngine(repository=repo, max_batch_size=2, max_wait=0.0)
        whole = ServingEngine(
            repository=repo, max_batch_size=2, max_wait=0.0, continuous_batching=False
        )
        clones = [
            InferenceRequest(
                r.model, r.family, r.token_ids, max_new_tokens=r.max_new_tokens
            )
            for r in requests
        ]
        results_a = continuous.serve(requests)
        results_b = whole.serve(clones)
        tokens_a = [r.output["generated_tokens"] for r in results_a]
        tokens_b = [r.output["generated_tokens"] for r in results_b]
        assert tokens_a == tokens_b

    def test_kv_accounting_exposed(self, repo):
        scheduler = ContinuousBatchingScheduler(
            repo, num_slots=2, cache_config=KVCacheConfig(bits=4, page_size=4)
        )
        scheduler.submit(gen_request(seq_len=12, max_new_tokens=4))
        scheduler.step()
        assert scheduler.kv_fp32_bytes > 0
        assert 0 < scheduler.kv_cache_bytes < scheduler.kv_fp32_bytes
        result = scheduler.run_until_idle()[0]
        assert result.output["kv_cache"]["kv_fp32_bytes"] > 0


class TestPrefixSharing:
    def test_second_identical_prompt_attaches_shared_pages(self, repo):
        config = KVCacheConfig(bits=4, page_size=4)
        scheduler = ContinuousBatchingScheduler(repo, num_slots=2, cache_config=config)
        prompt = np.random.default_rng(40).integers(0, 96, size=16)

        def request():
            return InferenceRequest(
                "gpt2-xl", WorkloadFamily.LM, prompt, max_new_tokens=3
            )

        scheduler.submit(request())
        first = scheduler.run_until_idle()[0]
        assert first.output["kv_cache"]["prefix_shared_tokens"] == 0
        scheduler.submit(request())
        second = scheduler.run_until_idle()[0]
        # 16-token prompt, page 4: at most (16-1)//4 = 3 pages shareable.
        assert second.output["kv_cache"]["prefix_shared_tokens"] == 12
        assert second.output["generated_tokens"] == first.output["generated_tokens"]

    def test_prefix_sharing_disabled_by_config(self, repo):
        config = KVCacheConfig(bits=4, page_size=4, prefix_sharing=False)
        scheduler = ContinuousBatchingScheduler(repo, num_slots=2, cache_config=config)
        prompt = np.random.default_rng(41).integers(0, 96, size=16)
        for _ in range(2):
            scheduler.submit(
                InferenceRequest("gpt2-xl", WorkloadFamily.LM, prompt, max_new_tokens=2)
            )
            result = scheduler.run_until_idle()[0]
            assert result.output["kv_cache"]["prefix_shared_tokens"] == 0
        assert scheduler.page_pool.num_prefix_nodes == 0

    def test_shared_and_cold_paths_generate_identical_tokens(self, repo):
        """Prefix-shared decode must reproduce the cold path token for token."""
        prompt = np.random.default_rng(42).integers(0, 96, size=20)
        outputs = {}
        for sharing in (True, False):
            config = KVCacheConfig(bits=4, page_size=4, prefix_sharing=sharing)
            scheduler = ContinuousBatchingScheduler(
                repo, num_slots=2, cache_config=config
            )
            tokens = []
            for _ in range(2):  # second submission hits the prefix when sharing
                scheduler.submit(
                    InferenceRequest(
                        "gpt2-xl", WorkloadFamily.LM, prompt, max_new_tokens=4
                    )
                )
                tokens.append(scheduler.run_until_idle()[0].output["generated_tokens"])
            outputs[sharing] = tokens
        assert outputs[True] == outputs[False]

    def test_retire_releases_slot_references(self, repo):
        config = KVCacheConfig(bits=4, page_size=4)
        scheduler = ContinuousBatchingScheduler(repo, num_slots=2, cache_config=config)
        scheduler.submit(gen_request(seq_len=12, max_new_tokens=2, seed=43))
        scheduler.run_until_idle()
        pool = scheduler.page_pool
        # Only prefix-indexed pages survive retirement, each singly held.
        assert pool.num_entries == pool.num_prefix_nodes * 2 * 3  # K/V × layers
        assert pool.num_shared_pages == 0

    def test_abort_releases_slot_references(self, repo):
        config = KVCacheConfig(bits=4, page_size=4)
        scheduler = ContinuousBatchingScheduler(repo, num_slots=2, cache_config=config)
        scheduler.submit(gen_request(seq_len=12, max_new_tokens=8, seed=44))
        scheduler.step()  # admitted, decoding
        assert scheduler.num_active == 1
        scheduler.abort_active(RuntimeError("boom"))
        pool = scheduler.page_pool
        assert scheduler.num_active == 0
        assert pool.num_entries == pool.num_prefix_nodes * 2 * 3
        assert pool.num_shared_pages == 0

    def test_pool_metrics_reach_stats_summary(self, repo):
        engine = ServingEngine(
            repository=repo,
            max_batch_size=4,
            max_wait=0.0,
            kv_cache_config=KVCacheConfig(bits=4, page_size=4),
        )
        prompt = np.random.default_rng(45).integers(0, 96, size=12)
        for _ in range(2):
            engine.serve(
                [InferenceRequest("gpt2-xl", WorkloadFamily.LM, prompt, max_new_tokens=6)]
            )
        summary = engine.stats.summary()
        assert summary.pool_hits > 0
        assert 0.0 < summary.pool_hit_rate <= 1.0
        assert summary.pool_decoded_bytes_saved > 0
        assert summary.prefix_pages_attached > 0
        assert summary.shared_pages_peak > 0
        as_dict = summary.as_dict()
        for key in ("pool_hit_rate", "pool_decoded_bytes_saved", "shared_pages_peak"):
            assert key in as_dict


class TestEngineWiring:
    def test_mixed_traffic_and_stats(self, repo):
        engine = ServingEngine(
            repository=repo,
            max_batch_size=4,
            max_wait=0.0,
            kv_cache_config=KVCacheConfig(bits=4, page_size=4),
        )
        rng = np.random.default_rng(1)
        requests = [
            gen_request(max_new_tokens=3, seed=11),
            InferenceRequest("gpt2-xl", WorkloadFamily.LM, rng.integers(0, 96, 8)),
            gen_request(max_new_tokens=5, seed=12),
        ]
        results = {r.request_id: r for r in engine.serve(requests)}
        assert len(results) == 3
        gen_out = results[requests[0].request_id].output
        assert len(gen_out["generated_tokens"]) == 3
        score_out = results[requests[1].request_id].output
        assert "generated_tokens" not in score_out and "next_tokens" in score_out
        summary = engine.stats.summary()
        assert summary.decode_rounds > 0
        assert summary.generated_tokens == 8
        assert 0 < summary.mean_slot_occupancy <= 1.0
        assert summary.kv_fp32_bytes_peak > summary.kv_cache_bytes_peak > 0
        assert summary.kv_compression > 1.0
        # generation latencies feed the same percentile pool
        assert summary.requests == 3

    def test_failed_admission_reported_not_fatal(self, repo):
        engine = ServingEngine(repository=repo, max_batch_size=2, max_wait=0.0)
        bad = gen_request(max_new_tokens=4, model="no-such-model")
        good = gen_request(max_new_tokens=2, seed=5)
        engine.submit(bad)
        engine.submit(good)
        results = engine.run_until_idle()
        assert [r.request_id for r in results] == [good.request_id]
        with pytest.raises(ServingError):
            engine.result(bad.request_id)

    def test_position_budget_enforced_per_request(self, repo):
        engine = ServingEngine(repository=repo, max_batch_size=2, max_wait=0.0)
        config = repo.get("gpt2-xl", WorkloadFamily.LM).model.config
        too_long = gen_request(
            seq_len=config.max_positions - 1, max_new_tokens=8, seed=6
        )
        fine = gen_request(max_new_tokens=2, seed=7)
        engine.submit(too_long)
        engine.submit(fine)
        results = engine.run_until_idle()
        assert [r.request_id for r in results] == [fine.request_id]
        with pytest.raises(ServingError, match="positions"):
            engine.result(too_long.request_id)

    def test_whole_batch_mode_position_overflow_fails_batch(self, repo):
        engine = ServingEngine(
            repository=repo, max_batch_size=2, max_wait=0.0, continuous_batching=False
        )
        config = repo.get("gpt2-xl", WorkloadFamily.LM).model.config
        request = gen_request(
            seq_len=config.max_positions, max_new_tokens=2, seed=8
        )
        engine.submit(request)
        engine.run_until_idle()
        with pytest.raises(ServingError, match="positions"):
            engine.result(request.request_id)

    def test_position_budget_boundary_request_is_served(self, repo):
        """The last generated token is never embedded, so a full-table prompt
        can still generate exactly one token."""
        engine = ServingEngine(repository=repo, max_batch_size=2, max_wait=0.0)
        config = repo.get("gpt2-xl", WorkloadFamily.LM).model.config
        request = gen_request(seq_len=config.max_positions, max_new_tokens=1, seed=8)
        results = engine.serve([request])
        assert len(results[0].output["generated_tokens"]) == 1

    def test_out_of_vocabulary_prompt_fails_only_that_request(self, repo):
        engine = ServingEngine(repository=repo, max_batch_size=4, max_wait=0.0)
        bad = InferenceRequest(
            "gpt2-xl", WorkloadFamily.LM, np.array([1, 2, 10_000]), max_new_tokens=2
        )
        good = gen_request(seq_len=3, max_new_tokens=2, seed=9)
        engine.submit(bad)
        engine.submit(good)
        results = engine.run_until_idle()
        assert [r.request_id for r in results] == [good.request_id]
        with pytest.raises(ServingError):
            engine.result(bad.request_id)

    def test_decode_round_crash_aborts_sequences_not_engine(self, repo):
        """A mid-decode exception fails the in-flight requests, frees the
        slots, and leaves the engine (and co-stepped micro-batches) alive."""
        engine = ServingEngine(repository=repo, max_batch_size=2, max_wait=0.0)
        doomed = gen_request(max_new_tokens=6, seed=20)
        engine.submit(doomed)
        engine.step(force=True)  # admitted and decoding
        assert engine.lm_scheduler.num_active == 1

        original = engine.lm_scheduler._decode_round
        engine.lm_scheduler._decode_round = lambda exclude: (_ for _ in ()).throw(
            RuntimeError("kv page corrupted")
        )
        score = InferenceRequest(
            "gpt2-xl", WorkloadFamily.LM, np.arange(4), request_id="score-alive"
        )
        engine.submit(score)
        results = engine.run_until_idle()
        engine.lm_scheduler._decode_round = original

        # The co-batched scoring request still completed...
        assert [r.request_id for r in results] == ["score-alive"]
        # ...the doomed sequence failed cleanly and its slot was freed...
        with pytest.raises(ServingError, match="kv page corrupted"):
            engine.result(doomed.request_id)
        assert engine.lm_scheduler.num_active == 0
        # ...and later generation traffic is served normally.
        revived = engine.serve([gen_request(max_new_tokens=2, seed=21)])
        assert len(revived[0].output["generated_tokens"]) == 2

    def test_score_request_logits_independent_of_cobatched_generation(self, repo):
        """A score-only LM request's logits must not change when a generation
        request shares its micro-batch (whole-batch mode)."""
        prompt = np.random.default_rng(30).integers(0, 96, size=8)
        alone = ServingEngine(
            repository=repo, max_batch_size=2, max_wait=0.0, continuous_batching=False
        )
        solo = alone.serve(
            [InferenceRequest("gpt2-xl", WorkloadFamily.LM, prompt, top_k=3)]
        )[0]
        mixed_engine = ServingEngine(
            repository=repo, max_batch_size=2, max_wait=0.0, continuous_batching=False
        )
        mixed = mixed_engine.serve(
            [
                InferenceRequest("gpt2-xl", WorkloadFamily.LM, prompt, top_k=3),
                gen_request(max_new_tokens=4, seed=31),
            ]
        )[0]
        assert mixed.output["next_tokens"] == solo.output["next_tokens"]
        assert mixed.output["log_probs"] == solo.output["log_probs"]
        assert "generated_tokens" not in mixed.output

    def test_pending_counts_scheduler_sequences(self, repo):
        engine = ServingEngine(repository=repo, max_batch_size=2, max_wait=0.0)
        engine.submit(gen_request(max_new_tokens=3, seed=10))
        assert engine.pending == 1
        engine.run_until_idle()
        assert engine.pending == 0


class TestDecodeMicroRounds:
    """decode_micro_rounds batches several plain rounds into one step()."""

    def test_token_identity_and_fewer_steps(self, repo):
        def run(micro_rounds):
            scheduler = ContinuousBatchingScheduler(
                repo, num_slots=2,
                cache_config=KVCacheConfig(bits=4, page_size=8),
                decode_micro_rounds=micro_rounds,
            )
            requests = [gen_request(seq_len=11, max_new_tokens=9, seed=s)
                        for s in (41, 42)]
            ids = [scheduler.submit(r) for r in requests]
            steps = 0
            outputs = {}
            while len(scheduler):
                for result in scheduler.step():
                    outputs[result.request_id] = result.output["generated_tokens"]
                steps += 1
                assert steps < 100
            return [outputs[i] for i in ids], steps

        single_tokens, single_steps = run(1)
        multi_tokens, multi_steps = run(3)
        assert multi_tokens == single_tokens
        assert multi_steps < single_steps

    def test_validation(self, repo):
        with pytest.raises(ServingError):
            ContinuousBatchingScheduler(repo, num_slots=1,
                                        decode_micro_rounds=0)
