"""Randomized invariant fuzz over the continuous scheduler's state machine.

Drives ``ContinuousBatchingScheduler`` through seeded random
admit/step/cancel/preempt/deadline/fault sequences — with and without
speculative decoding — and asserts after every step that

* PagePool refcounts balance exactly against the holders (slot caches and
  prefix-index nodes), and every live handle is accounted for;
* slot occupancy never exceeds capacity;
* no retired request ever re-emits a :class:`TokenChunk` (indices are
  gapless, terminals are single and final — a preempted stream pauses
  without a terminal and resumes at the same index);
* every submitted request reaches exactly one terminal outcome: a
  ``finish_reason`` (``deadline`` included) or a recorded failure.

The suite runs derandomized (fixed seeds) so tier-1 CI is reproducible.
"""

from collections import Counter

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.serve import (
    AdmissionPolicy,
    ContinuousBatchingScheduler,
    FaultInjector,
    FaultSchedule,
    FaultSpec,
    FinishReason,
    InferenceRequest,
    InjectedFault,
    KVCacheConfig,
    ModelRepository,
    SamplingParams,
    SpeculativeConfig,
    SpeculativeDecoder,
    WorkloadFamily,
)

MODEL = "gpt2-xl"
VOCAB = 96
NUM_SLOTS = 2


@pytest.fixture(scope="module")
def repository():
    repo = ModelRepository(bits=4, seed=0)
    repo.get(MODEL, WorkloadFamily.LM)
    return repo


@pytest.fixture(scope="module")
def cache_config():
    # Tiny pages + prefix sharing on: maximum page churn per token.
    return KVCacheConfig(bits=4, page_size=4, prefix_sharing=True)


@pytest.fixture(scope="module")
def speculative(repository, cache_config):
    decoder = SpeculativeDecoder(
        repository,
        SpeculativeConfig(
            num_speculative_tokens=2,
            calibration_sequences=4,
            calibration_tokens=10,
            calibration_prompt_len=4,
        ),
        target_cache_config=cache_config,
    )
    decoder.warm(MODEL)
    return decoder


def check_refcounts(scheduler):
    """Every pool entry's refcount equals the holders we can enumerate."""
    pool = scheduler.page_pool
    held = Counter()
    for slot in scheduler._slots:
        if slot is None:
            continue
        for layer_index in range(slot.cache.num_layers):
            layer = slot.cache.layer(layer_index)
            for handle in layer._sealed_k + layer._sealed_v:
                held[id(handle)] += 1
    for node in pool._prefix_nodes.values():
        for handle in node.handles():
            held[id(handle)] += 1
    entries = {id(handle): handle for handle in pool._entries.values()}
    for key, handle in entries.items():
        assert handle.refcount == held[key], (
            f"page {handle.page_id}: refcount {handle.refcount} != "
            f"{held[key]} enumerated holders"
        )
    for key, count in held.items():
        assert key in entries and count > 0


class _ChunkLedger:
    """Tracks streamed chunks per request and enforces stream discipline."""

    def __init__(self):
        self.expected = {}
        self.finished = {}

    def consume(self, chunks):
        for chunk in chunks:
            rid = chunk.request_id
            assert rid not in self.finished, (
                f"request {rid} emitted a chunk after its terminal "
                f"({self.finished.get(rid)})"
            )
            index = self.expected.get(rid, 0)
            assert chunk.index == index, (
                f"request {rid}: chunk index {chunk.index}, expected {index}"
            )
            if chunk.is_token:
                self.expected[rid] = index + 1
            else:
                assert chunk.finish_reason is not None
            if chunk.finish_reason is not None:
                assert chunk.finish_reason in FinishReason.ALL
                self.finished[rid] = chunk.finish_reason


def run_sequence(repository, cache_config, speculative, plan, seeds):
    rng = np.random.default_rng(seeds)
    scheduler = ContinuousBatchingScheduler(
        repository,
        num_slots=NUM_SLOTS,
        cache_config=cache_config,
        speculative=speculative,
        share_generated_suffix=bool(rng.integers(0, 2)),
        # Preemption armed: "gold" submissions (op 3) evict default-priority
        # actives, exercising evict/re-queue/resume under the same invariants.
        admission=AdmissionPolicy(class_priority={"gold": 5}, preempt=True),
    )
    # Fault seam armed with an empty schedule; op 5 injects one-shot faults.
    injector = FaultInjector(FaultSchedule(())).attach(scheduler)
    ledger = _ChunkLedger()
    submitted = []
    terminals = {}

    def absorb(results):
        for result in results:
            rid = result.request_id
            assert rid not in terminals, f"request {rid} completed twice"
            assert result.output.finish_reason in FinishReason.ALL
            terminals[rid] = result.output.finish_reason

    def step():
        try:
            absorb(scheduler.step())
        except InjectedFault as exc:
            # The engine's recovery discipline: abort in-flight slots and
            # keep serving; the aborted ids surface via take_failures().
            scheduler.abort_active(exc)

    def make_request(slo_class="default", deadline_s=None):
        seq_len = int(rng.integers(2, 9))
        sampling = SamplingParams(
            temperature=float(rng.choice([0.0, 0.0, 0.9])),
            max_new_tokens=int(rng.integers(1, 6)),
            stop_token_ids=(
                (int(rng.integers(0, VOCAB)),) if rng.integers(0, 2) else ()
            ),
            seed=int(rng.integers(0, 1 << 16)),
        )
        request = InferenceRequest(
            MODEL,
            WorkloadFamily.LM,
            rng.integers(0, VOCAB, size=seq_len),
            sampling=sampling,
            slo_class=slo_class,
            deadline_s=deadline_s,
        )
        submitted.append(request.request_id)
        scheduler.submit(request)

    def checkpoint():
        assert scheduler.num_active <= NUM_SLOTS
        assert 0.0 <= scheduler.slot_occupancy <= 1.0
        ledger.consume(scheduler.take_chunks())
        check_refcounts(scheduler)

    for op in plan:
        if op == 0:  # submit
            make_request()
        elif op == 1:  # step
            step()
        elif op == 2 and submitted:  # cancel a known request (maybe done)
            target = submitted[int(rng.integers(0, len(submitted)))]
            result = scheduler.cancel(target)
            if result is not None:
                absorb([result])
        elif op == 3:  # preempt: gold-priority submission evicts an active
            make_request(slo_class="gold")
        elif op == 4:  # deadline-expire: already dead on the next sweep
            make_request(deadline_s=1e-9)
        elif op == 5:  # inject-fault: one-shot error entering the next round
            injector.add(
                FaultSpec(
                    "phase_error",
                    phase="round",
                    at_count=injector.occurrences("round") + 1,
                )
            )
        checkpoint()

    while len(scheduler):
        step()
        checkpoint()

    failures = dict(scheduler.take_failures())
    for rid in submitted:
        assert (rid in terminals) != (rid in failures), (
            f"request {rid} must finish exactly once "
            f"(terminal={terminals.get(rid)}, failure={failures.get(rid)})"
        )
    # Fully drained: the only live pages are the prefix index's.
    prefix_held = Counter()
    for node in scheduler.page_pool._prefix_nodes.values():
        for handle in node.handles():
            prefix_held[id(handle)] += 1
    for handle in scheduler.page_pool._entries.values():
        assert handle.refcount == prefix_held[id(handle)]
    return terminals


@pytest.mark.parametrize("with_speculation", [False, True])
@settings(max_examples=10, deadline=None, derandomize=True)
@given(
    plan=st.lists(st.integers(min_value=0, max_value=5), min_size=4, max_size=16),
    seeds=st.integers(min_value=0, max_value=2**32 - 1),
)
def test_scheduler_invariants_hold_under_random_traffic(
    repository, cache_config, speculative, with_speculation, plan, seeds
):
    terminals = run_sequence(
        repository,
        cache_config,
        speculative if with_speculation else None,
        plan,
        seeds,
    )
    assert all(reason in FinishReason.ALL for reason in terminals.values())


def test_cancel_only_traffic_balances(repository, cache_config):
    """Submit-then-cancel without ever stepping leaves the pool empty."""
    scheduler = ContinuousBatchingScheduler(
        repository, num_slots=NUM_SLOTS, cache_config=cache_config
    )
    rng = np.random.default_rng(0)
    ids = []
    for _ in range(3):
        request = InferenceRequest(
            MODEL,
            WorkloadFamily.LM,
            rng.integers(0, VOCAB, size=5),
            sampling=SamplingParams(max_new_tokens=3),
        )
        ids.append(scheduler.submit(request))
    for rid in ids:
        result = scheduler.cancel(rid)
        assert result.output.finish_reason == FinishReason.ABORTED
    assert len(scheduler) == 0
    assert scheduler.page_pool.num_entries == 0
    check_refcounts(scheduler)
