"""Page-pool tests: refcounts, decode-once LRU, prefix sharing, release."""

import numpy as np
import pytest

from repro.models.zoo import build_causal_lm
from repro.serve.kvcache import (
    KVCacheConfig,
    LayerKVCache,
    PagePool,
    cache_for_model,
)
from repro.serve.requests import ServingError
from repro.serve.scheduler import greedy_top_k

HEADS, DIM = 4, 16


def step(rng, t=1, scale=1.0):
    return rng.normal(0.0, scale, size=(HEADS, t, DIM))


def sealed_cache(rng, pool=None, t=16, **config_kwargs):
    config_kwargs.setdefault("bits", 4)
    config_kwargs.setdefault("page_size", 4)
    cache = LayerKVCache(HEADS, DIM, KVCacheConfig(**config_kwargs), pool=pool)
    cache.append(step(rng, t), step(rng, t))
    return cache


class TestRefcounts:
    def test_register_incref_release(self):
        pool = PagePool()
        handle = pool.register(np.zeros((2, 2)))
        assert handle.refcount == 1 and pool.num_entries == 1
        pool.incref(handle)
        assert handle.refcount == 2 and handle.shared
        pool.release(handle)
        assert pool.num_entries == 1 and not handle.shared
        pool.release(handle)
        assert pool.num_entries == 0 and pool.pages_dropped == 1

    def test_over_release_rejected(self):
        pool = PagePool()
        handle = pool.register(np.zeros(2))
        pool.release(handle)
        with pytest.raises(ServingError):
            pool.release(handle)

    def test_cache_release_drops_pages_and_decoded_entries(self):
        pool = PagePool()
        cache = sealed_cache(np.random.default_rng(0), pool=pool)
        assert pool.num_entries == cache.num_sealed_pages == 8
        cache.kv()  # populate the decoded LRU
        assert pool.decoded_cache_bytes > 0
        cache.release()
        assert pool.num_entries == 0
        assert pool.decoded_cache_bytes == 0
        assert cache.seq_len == 0
        with pytest.raises(ServingError):
            cache.kv()


class TestDecodedLRU:
    def test_pages_decode_once_and_hits_are_bitwise_identical(self):
        pool = PagePool()
        cache = sealed_cache(np.random.default_rng(1), pool=pool)
        k_first, v_first = cache.kv()
        assert pool.decode_misses == 8 and pool.decode_hits == 0
        k_again, v_again = cache.kv()
        assert pool.decode_misses == 8 and pool.decode_hits == 8
        np.testing.assert_array_equal(k_first, k_again)
        np.testing.assert_array_equal(v_first, v_again)
        assert pool.decoded_bytes_saved > 0

    def test_decoded_values_match_direct_codec_decode(self):
        pool = PagePool()
        cache = sealed_cache(np.random.default_rng(2), pool=pool)
        k_pool, _ = cache.kv()
        direct = np.concatenate(
            [cache.codec.decode_tensor(h.payload) for h in cache._sealed_k], axis=1
        )
        np.testing.assert_array_equal(k_pool, direct)

    def test_zero_capacity_disables_reuse(self):
        pool = PagePool(decoded_capacity_bytes=0)
        cache = sealed_cache(np.random.default_rng(3), pool=pool)
        cache.kv()
        cache.kv()
        assert pool.decode_hits == 0 and pool.decode_misses == 16
        assert pool.decoded_cache_bytes == 0

    def test_lru_evicts_oldest_under_pressure(self):
        page_bytes = HEADS * 4 * DIM * 8  # one decoded float64 page
        pool = PagePool(decoded_capacity_bytes=page_bytes * 3)
        cache = sealed_cache(np.random.default_rng(4), pool=pool)  # 8 pages
        cache.kv()
        assert pool.decoded_cache_bytes <= page_bytes * 3
        # Everything still decodes correctly even with most pages evicted.
        k, _ = cache.kv()
        assert k.shape == (HEADS, 16, DIM)

    def test_duplicate_fetch_in_one_call_decodes_once(self):
        pool = PagePool()
        cache = sealed_cache(np.random.default_rng(5), pool=pool, t=4)  # 1 page/side
        handle = cache._sealed_k[0]
        arrays = pool.decoded_many([handle, handle], cache.codec)
        assert arrays[0] is arrays[1]
        assert pool.decode_misses == 1 and pool.decode_hits == 1

    def test_reference_mode_passes_through_without_decode(self):
        pool = PagePool()
        cache = sealed_cache(np.random.default_rng(6), pool=pool, quantize=False)
        cache.kv()
        assert pool.decode_hits == 0 and pool.decode_misses == 0


class TestKvManyValidation:
    def test_empty_cache_list_rejected(self):
        with pytest.raises(ServingError, match="at least one cache"):
            LayerKVCache.kv_many([])

    def test_mixed_quantize_modes_rejected(self):
        rng = np.random.default_rng(7)
        packed = sealed_cache(rng)
        reference = sealed_cache(rng, quantize=False)
        with pytest.raises(ServingError, match="mix quantized and reference"):
            LayerKVCache.kv_many([packed, reference])

    def test_mixed_ovp_widths_rejected(self):
        rng = np.random.default_rng(8)
        four = sealed_cache(rng, bits=4)
        eight = sealed_cache(rng, bits=8)
        with pytest.raises(ServingError, match="mix OVP widths"):
            LayerKVCache.kv_many([four, eight])

    def test_empty_member_cache_rejected(self):
        rng = np.random.default_rng(9)
        full = sealed_cache(rng)
        empty = LayerKVCache(HEADS, DIM, KVCacheConfig(bits=4, page_size=4))
        with pytest.raises(ServingError, match="empty"):
            LayerKVCache.kv_many([full, empty])

    def test_kv_many_spans_private_pools(self):
        # Standalone caches each own a pool; kv_many still reassembles all.
        rng = np.random.default_rng(10)
        caches = [sealed_cache(rng, t=t) for t in (3, 9, 17)]
        assert len({id(c.pool) for c in caches}) == 3
        for cache, (k_b, v_b) in zip(caches, LayerKVCache.kv_many(caches)):
            k, v = cache.kv()
            np.testing.assert_array_equal(k_b, k)
            np.testing.assert_array_equal(v_b, v)


class TestPrefixSharing:
    @pytest.fixture(scope="class")
    def model(self):
        return build_causal_lm("gpt2-xl", seed=0)

    def prefilled(self, model, tokens, pool, config):
        cache = cache_for_model(model, config, pool=pool)
        model.log_probs_incremental(np.asarray(tokens)[None], [cache])
        return cache

    @pytest.mark.parametrize("quantize", [True, False])
    def test_attached_prefix_is_bitwise_equal_to_donor(self, model, quantize):
        config = KVCacheConfig(bits=4, page_size=8, quantize=quantize)
        pool = config.make_pool()
        tokens = np.random.default_rng(11).integers(0, 96, size=35)
        donor = self.prefilled(model, tokens, pool, config)
        pool.register_prefix("m", tokens, donor)

        num_pages, layers_k, layers_v = pool.lookup_prefix("m", tokens, 8, max_pages=4)
        assert num_pages == 4
        twin = cache_for_model(model, config, pool=pool)
        twin.attach_prefix(layers_k, layers_v, num_pages * 8)
        assert twin.seq_len == 32
        for layer in range(donor.num_layers):
            k_donor, v_donor = donor.layer(layer).kv()
            k_twin, v_twin = twin.layer(layer).kv()
            np.testing.assert_array_equal(k_twin, k_donor[:, :32])
            np.testing.assert_array_equal(v_twin, v_donor[:, :32])
            assert donor.layer(layer)._sealed_k[0] is twin.layer(layer)._sealed_k[0]

    def test_prefix_index_keeps_pages_alive_after_donor_release(self, model):
        config = KVCacheConfig(bits=4, page_size=8)
        pool = config.make_pool()
        tokens = np.random.default_rng(12).integers(0, 96, size=24)
        donor = self.prefilled(model, tokens, pool, config)
        pool.register_prefix("m", tokens, donor)
        indexed = 3 * 2 * donor.num_layers  # 3 pages × K/V × layers
        donor.release()
        assert pool.num_entries == indexed
        num_pages, layers_k, layers_v = pool.lookup_prefix("m", tokens, 8, max_pages=2)
        assert num_pages == 2
        twin = cache_for_model(model, config, pool=pool)
        twin.attach_prefix(layers_k, layers_v, 16)
        k, _ = twin.layer(0).kv()
        assert k.shape == (twin.layer(0).num_heads, 16, twin.layer(0).head_dim)

    def test_lookup_scoped_by_key_and_alignment(self, model):
        config = KVCacheConfig(bits=4, page_size=8)
        pool = config.make_pool()
        tokens = np.random.default_rng(13).integers(0, 96, size=24)
        donor = self.prefilled(model, tokens, pool, config)
        pool.register_prefix("model-a", tokens, donor)
        assert pool.lookup_prefix("model-b", tokens, 8, max_pages=2)[0] == 0
        different = tokens.copy()
        different[0] += 1  # first page differs -> whole chain misses
        assert pool.lookup_prefix("model-a", different, 8, max_pages=2)[0] == 0
        # A longer prompt sharing the pages matches only the sealed chain.
        longer = np.concatenate([tokens, np.array([1, 2, 3], dtype=np.int64)])
        assert pool.lookup_prefix("model-a", longer, 8, max_pages=3)[0] == 3

    def test_prefix_eviction_releases_references(self, model):
        config = KVCacheConfig(bits=4, page_size=8)
        pool = PagePool(decoded_capacity_bytes=0, prefix_capacity=2)
        tokens = np.random.default_rng(14).integers(0, 96, size=40)
        donor = self.prefilled(model, tokens, pool, config)
        pool.register_prefix("m", tokens, donor)  # 5 pages -> 3 evicted
        assert pool.num_prefix_nodes == 2
        donor.release()
        # Only the two retained nodes' pages stay alive.
        assert pool.num_entries == 2 * 2 * donor.num_layers

    def test_attach_rejects_geometry_and_state_mismatches(self, model):
        config = KVCacheConfig(bits=4, page_size=8)
        pool = config.make_pool()
        tokens = np.random.default_rng(15).integers(0, 96, size=16)
        donor = self.prefilled(model, tokens, pool, config)
        pool.register_prefix("m", tokens, donor)
        _, layers_k, layers_v = pool.lookup_prefix("m", tokens, 8, max_pages=2)
        occupied = cache_for_model(model, config, pool=pool)
        model.log_probs_incremental(tokens[None, :4], [occupied])
        with pytest.raises(ServingError, match="empty"):
            occupied.attach_prefix(layers_k, layers_v, 16)
        twin = cache_for_model(model, config, pool=pool)
        with pytest.raises(ServingError, match="does not fill"):
            twin.attach_prefix(layers_k, layers_v, 15)
        small = LayerKVCache(2, 4, config, pool=pool)
        with pytest.raises(ServingError, match="geometry"):
            small.attach(layers_k[0], layers_v[0], 16)


class TestGreedyTopK:
    def test_matches_full_sort(self):
        rng = np.random.default_rng(16)
        log_probs = rng.normal(size=200)
        expected = np.argsort(log_probs)[::-1][:5]
        assert greedy_top_k(log_probs, 5)["next_tokens"] == [int(t) for t in expected]

    def test_top_k_clamped_to_vocab(self):
        log_probs = np.array([0.1, 0.9, 0.5])
        out = greedy_top_k(log_probs, 10)
        assert out["next_tokens"] == [1, 2, 0]

    def test_invalid_top_k_rejected(self):
        with pytest.raises(ServingError, match="top_k"):
            greedy_top_k(np.zeros(4), 0)
        with pytest.raises(ServingError, match="top_k"):
            greedy_top_k(np.zeros(4), -3)

    def test_log_probs_sorted_descending(self):
        rng = np.random.default_rng(17)
        out = greedy_top_k(rng.normal(size=500), 8)
        assert out["log_probs"] == sorted(out["log_probs"], reverse=True)
