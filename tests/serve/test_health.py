"""Health-layer tests: SLO objectives, burn-rate alerting, resource accounting.

The load-bearing guarantees:

* **Determinism** — under a fake clock, a synthetic TTFT degradation fires a
  fast-window burn-rate ``HealthEvent`` at a reproducible evaluation and later
  resolves with hysteresis; the firing and resolving events share a
  ``correlation_id``.
* **Registry consistency** — the SLO layer *reads* the same instruments
  ``ServingStats`` writes, so attainment/availability always agree with the
  mirrored counters, including on the abort/cancel paths.
* **Resource accounting** — pool sealed/decoded-LRU bytes, per-slot KV bytes,
  queue depth and slot occupancy are live gauges in ``metrics_text()`` and in
  ``health_report()["resources"]``.
"""

import asyncio
import json

import numpy as np
import pytest

from repro.serve import (
    AsyncServer,
    BurnRatePolicy,
    HealthConfig,
    HealthMonitor,
    InferenceRequest,
    KVCacheConfig,
    ModelRepository,
    PagePool,
    SamplingParams,
    SLOClass,
    ServingEngine,
    ServingError,
    Tracer,
    WorkloadFamily,
    unified_event_log,
    validate_exposition,
)
from repro.serve.stats import DecodeRoundRecord, ServingStats

MODEL = "gpt2-xl"
VOCAB = 96

#: A bucket bound of stats._LATENCY_BUCKETS (1e-4 * 2**11), so synthetic
#: 0.01 s observations are unambiguously good and 1.0 s ones unambiguously bad.
TTFT_TARGET = 0.2048

FAST_POLICY = BurnRatePolicy(
    fast_window_seconds=60.0,
    slow_window_seconds=1800.0,
    fire_threshold=14.4,
    resolve_threshold=1.0,
)


class FakeClock:
    def __init__(self, now=1000.0):
        self.now = now

    def __call__(self):
        return self.now

    def advance(self, seconds):
        self.now += seconds


def lm_requests(rng_seed, count=3, seq_len=6, max_new_tokens=8, slo_class="default"):
    rng = np.random.default_rng(rng_seed)
    return [
        InferenceRequest(
            MODEL,
            WorkloadFamily.LM,
            rng.integers(0, VOCAB, size=seq_len),
            sampling=SamplingParams(max_new_tokens=max_new_tokens),
            slo_class=slo_class,
        )
        for _ in range(count)
    ]


def synthetic_round(ttfts=(), finishes=(), slo_class="default", **kwargs):
    """A DecodeRoundRecord carrying only the signals the SLO layer reads."""
    kwargs.setdefault("active_slots", 1)
    kwargs.setdefault("num_slots", 4)
    kwargs.setdefault("new_tokens", len(ttfts))
    kwargs.setdefault("generated_tokens", len(ttfts))
    kwargs.setdefault("compute_seconds", 0.001)
    kwargs.setdefault("kv_cache_bytes", 0)
    kwargs.setdefault("kv_fp32_bytes", 0)
    return DecodeRoundRecord(
        first_token_seconds=tuple(ttfts),
        first_token_classes=(slo_class,) * len(ttfts),
        finish_reasons=tuple(finishes),
        finish_classes=(slo_class,) * len(finishes),
        **kwargs,
    )


def monitored_stats(clock, classes=None, policy=FAST_POLICY, interval=1.0):
    """A (stats, monitor) pair sharing one registry under ``clock``."""
    stats = ServingStats(clock=clock)
    config = HealthConfig(
        classes=classes or (SLOClass(name="default", ttft_target_seconds=TTFT_TARGET),),
        policy=policy,
        evaluation_interval_seconds=interval,
    )
    return stats, HealthMonitor(stats.registry, config, clock=clock)


# --------------------------------------------------------------------------- #
# Config validation
# --------------------------------------------------------------------------- #
class TestConfigValidation:
    def test_slo_class_rejects_bad_targets(self):
        with pytest.raises(ServingError):
            SLOClass(attainment_target=1.0)  # no budget left to burn
        with pytest.raises(ServingError):
            SLOClass(availability_target=0.0)
        with pytest.raises(ServingError):
            SLOClass(ttft_target_seconds=0.0)
        with pytest.raises(ServingError):
            SLOClass(name="")

    def test_policy_rejects_inverted_windows_and_thresholds(self):
        with pytest.raises(ServingError):
            BurnRatePolicy(fast_window_seconds=60, slow_window_seconds=60)
        with pytest.raises(ServingError):
            BurnRatePolicy(fire_threshold=1.0, resolve_threshold=2.0)
        with pytest.raises(ServingError):
            BurnRatePolicy(fast_window_seconds=-1)

    def test_config_rejects_duplicate_class_names(self):
        with pytest.raises(ServingError):
            HealthConfig(classes=(SLOClass(name="a"), SLOClass(name="a")))
        with pytest.raises(ServingError):
            HealthConfig(classes=())

    def test_config_coerces_string_classes(self):
        config = HealthConfig(classes=("gold", SLOClass(name="bulk")))
        assert [c.name for c in config.classes] == ["gold", "bulk"]
        assert all(isinstance(c, SLOClass) for c in config.classes)

    def test_request_rejects_empty_slo_class(self):
        with pytest.raises(ServingError):
            InferenceRequest(MODEL, WorkloadFamily.LM, np.arange(1, 5), slo_class="")


# --------------------------------------------------------------------------- #
# Attainment from the shared instruments
# --------------------------------------------------------------------------- #
class TestAttainment:
    def test_ttft_attainment_reads_histogram_buckets(self):
        clock = FakeClock()
        stats, monitor = monitored_stats(clock)
        stats.record_decode_round(synthetic_round(ttfts=(0.01, 0.01, 0.01, 1.0)))
        monitor.evaluate()
        report = monitor.report()
        ttft = report["slo"]["default"]["ttft"]
        assert ttft["attainment"] == pytest.approx(0.75)
        assert ttft["events"] == 4
        assert ttft["threshold_seconds"] == TTFT_TARGET

    def test_availability_counts_errors_not_aborts(self):
        clock = FakeClock()
        stats, monitor = monitored_stats(clock)
        stats.record_decode_round(
            synthetic_round(finishes=("stop", "length", "error", "aborted"))
        )
        monitor.evaluate()
        availability = monitor.report()["slo"]["default"]["availability"]
        # 2 good (stop+length), 1 bad (error); aborted is client-initiated.
        assert availability["events"] == 3
        assert availability["attainment"] == pytest.approx(2 / 3)

    def test_unconfigured_class_is_recorded_but_not_evaluated(self):
        clock = FakeClock()
        stats, monitor = monitored_stats(clock)
        stats.record_decode_round(synthetic_round(ttfts=(1.0,), slo_class="mystery"))
        monitor.evaluate()
        assert "mystery" not in monitor.report()["slo"]
        # The observation still exists in the labeled histogram.
        hist = stats.registry.get("serve_ttft_seconds")
        assert hist.count_value(slo_class="mystery") == 1

    def test_attainment_gauges_render_per_class_and_objective(self):
        clock = FakeClock()
        stats, monitor = monitored_stats(
            clock,
            classes=(
                SLOClass(name="default", ttft_target_seconds=TTFT_TARGET),
                SLOClass(name="gold", ttft_target_seconds=TTFT_TARGET),
            ),
        )
        stats.record_decode_round(synthetic_round(ttfts=(0.01,), slo_class="gold"))
        monitor.evaluate()
        text = stats.metrics_text()
        assert 'serve_slo_attainment{slo_class="gold",objective="ttft"} 1' in text
        assert 'serve_slo_attainment{slo_class="default",objective="latency"} 1' in text
        assert 'serve_slo_burn_rate{slo_class="gold",objective="ttft",window="fast"}' in text
        validate_exposition(text)


# --------------------------------------------------------------------------- #
# Burn-rate alerting: fire, hysteresis, resolve (the acceptance criterion)
# --------------------------------------------------------------------------- #
class TestBurnRateAlerting:
    def run_traffic(self, stats, monitor, clock, ttft, rounds, step_seconds=6.0,
                    per_round=10):
        """Record ``rounds`` rounds of uniform traffic; returns emitted events."""
        events = []
        for _ in range(rounds):
            stats.record_decode_round(synthetic_round(ttfts=(ttft,) * per_round))
            clock.advance(step_seconds)
            events.extend(monitor.evaluate())
        return events

    def test_degradation_fires_and_recovery_resolves_with_hysteresis(self):
        clock = FakeClock()
        stats, monitor = monitored_stats(clock)
        # Healthy prelude: no events.
        assert self.run_traffic(stats, monitor, clock, 0.01, rounds=10) == []
        assert not monitor.firing
        # Synthetic TTFT degradation: every first token takes 1 s.
        fired = self.run_traffic(stats, monitor, clock, 1.0, rounds=10)
        assert len(fired) == 1 and fired[0].state == "firing"
        assert fired[0].objective == "ttft" and fired[0].slo_class == "default"
        assert fired[0].burn_fast >= FAST_POLICY.fire_threshold
        assert fired[0].burn_slow >= FAST_POLICY.fire_threshold
        assert monitor.firing
        assert monitor.report()["status"] == "degraded"
        assert monitor.report()["alerts"][0]["correlation_id"] == fired[0].correlation_id
        # Recovery: good traffic cools the fast window below resolve_threshold
        # (1.0) even though the slow window is still hot — hysteresis resolves
        # on the fast window only.
        resolved = self.run_traffic(stats, monitor, clock, 0.01, rounds=40)
        assert len(resolved) == 1 and resolved[0].state == "resolved"
        assert resolved[0].correlation_id == fired[0].correlation_id
        assert resolved[0].burn_fast <= FAST_POLICY.resolve_threshold
        assert resolved[0].burn_slow > FAST_POLICY.resolve_threshold
        assert not monitor.firing
        assert monitor.report()["status"] == "ok"
        assert monitor.report()["alerts"] == []

    def test_determinism_same_traffic_same_events(self):
        def run():
            clock = FakeClock()
            stats, monitor = monitored_stats(clock)
            self.run_traffic(stats, monitor, clock, 0.01, rounds=5)
            self.run_traffic(stats, monitor, clock, 1.0, rounds=12)
            self.run_traffic(stats, monitor, clock, 0.01, rounds=30)
            return monitor.jsonl()

        first, second = run(), run()
        assert first == second
        assert len(first.splitlines()) == 2  # exactly one fire + one resolve

    def test_alert_does_not_flap_inside_the_hysteresis_band(self):
        clock = FakeClock()
        stats, monitor = monitored_stats(clock)
        self.run_traffic(stats, monitor, clock, 1.0, rounds=10)
        assert monitor.firing
        # 5 % bad traffic keeps the fast burn ~5 — above resolve (1.0), below
        # fire (14.4): the alert must neither resolve nor re-fire.
        events = []
        for _ in range(30):
            stats.record_decode_round(
                synthetic_round(ttfts=(0.01,) * 19 + (1.0,))
            )
            clock.advance(6.0)
            events.extend(monitor.evaluate())
        assert events == []
        assert monitor.firing

    def test_refire_gets_a_fresh_correlation_id(self):
        clock = FakeClock()
        stats, monitor = monitored_stats(clock)
        first = self.run_traffic(stats, monitor, clock, 1.0, rounds=10)
        self.run_traffic(stats, monitor, clock, 0.01, rounds=40)
        # Second incident: the slow window must heat past the threshold again.
        second = self.run_traffic(stats, monitor, clock, 1.0, rounds=60)
        fire_ids = [e.correlation_id for e in first + second if e.state == "firing"]
        assert len(fire_ids) == 2 and fire_ids[0] != fire_ids[1]

    def test_brief_spike_does_not_page(self):
        clock = FakeClock()
        stats, monitor = monitored_stats(clock)
        # A long healthy history, then one bad burst: the fast window burns
        # hot but the slow window (diluted by history) stays cold.
        self.run_traffic(stats, monitor, clock, 0.01, rounds=300)
        events = self.run_traffic(stats, monitor, clock, 1.0, rounds=1, per_round=100)
        assert events == []
        assert not monitor.firing
        state = monitor.report()["slo"]["default"]["ttft"]
        assert state["burn_fast"] >= FAST_POLICY.fire_threshold
        assert state["burn_slow"] < FAST_POLICY.fire_threshold

    def test_maybe_evaluate_rate_limits(self):
        clock = FakeClock()
        stats, monitor = monitored_stats(clock, interval=10.0)
        assert monitor.maybe_evaluate() is True
        assert monitor.maybe_evaluate() is False
        clock.advance(10.0)
        assert monitor.maybe_evaluate() is True

    def test_budget_counter_accumulates_bad_events(self):
        clock = FakeClock()
        stats, monitor = monitored_stats(clock)
        self.run_traffic(stats, monitor, clock, 1.0, rounds=3, per_round=5)
        used = stats.registry.get("serve_slo_budget_events_total")
        assert used.value(slo_class="default", objective="ttft") == 15


# --------------------------------------------------------------------------- #
# Unified event log
# --------------------------------------------------------------------------- #
class TestUnifiedEventLog:
    def test_merges_spans_and_events_time_ordered(self):
        clock = FakeClock()
        tracer = Tracer(clock=clock)
        stats, monitor = monitored_stats(clock)
        with tracer.span("round"):
            clock.advance(0.5)
        for _ in range(10):
            stats.record_decode_round(synthetic_round(ttfts=(1.0,) * 10))
            clock.advance(6.0)
            monitor.evaluate()
        with tracer.span("round"):
            clock.advance(0.5)
        log = unified_event_log(tracer, monitor)
        lines = [json.loads(line) for line in log.splitlines()]
        kinds = {line["type"] for line in lines}
        assert "span" in kinds and "event" in kinds
        stamps = [line["ts_us"] for line in lines]
        assert stamps == sorted(stamps)
        # Shared epoch: the earliest line sits at zero.
        assert stamps[0] == 0.0
        event = next(line for line in lines if line["type"] == "event")
        assert event["correlation_id"].startswith("alert-")

    def test_empty_sides_yield_empty_log(self):
        clock = FakeClock()
        tracer = Tracer(clock=clock)
        stats, monitor = monitored_stats(clock)
        assert unified_event_log(tracer, monitor) == ""
        assert unified_event_log(tracer, None) == ""


# --------------------------------------------------------------------------- #
# Resource accounting
# --------------------------------------------------------------------------- #
class TestResourceAccounting:
    def test_pool_sealed_bytes_tracks_register_and_release(self):
        pool = PagePool()
        payload = np.zeros((2, 4), dtype=np.float32)
        handle = pool.register(payload)
        assert pool.sealed_bytes == handle.nbytes_resident > 0
        pool.incref(handle)
        assert pool.sealed_bytes == handle.nbytes_resident  # refs don't double-count
        pool.release(handle)
        assert pool.sealed_bytes == handle.nbytes_resident
        pool.release(handle)
        assert pool.sealed_bytes == 0
        # Resurrection through the prefix-index path re-admits the bytes.
        pool.incref(handle)
        assert pool.sealed_bytes == handle.nbytes_resident
        pool.release(handle)
        assert pool.sealed_bytes == 0
        assert "sealed_bytes" in pool.stats()

    def test_mid_flight_snapshot_names_top_consumers(self):
        engine = ServingEngine(
            ModelRepository(bits=4, seed=0),
            num_slots=2,
            kv_cache_config=KVCacheConfig(bits=4, page_size=8),
        )
        engine.warm(MODEL, WorkloadFamily.LM)
        for request in lm_requests(3, count=3, max_new_tokens=16, slo_class="gold"):
            engine.submit(request)
        for _ in range(4):
            engine.step(force=True)
        snapshot = engine.lm_scheduler.resource_snapshot()
        assert snapshot["active_slots"] == snapshot["num_slots"] == 2
        assert snapshot["queue_depth"] == 1
        assert snapshot["kv_cache_bytes"] > 0
        assert snapshot["pool"]["sealed_bytes"] > 0
        top = snapshot["top_consumers"]
        assert len(top) == 2
        assert top[0]["kv_bytes"] >= top[1]["kv_bytes"] > 0
        assert all(c["slo_class"] == "gold" for c in top)
        # The same accounting reaches the gauges once a round is recorded.
        text = engine.metrics_text()
        assert "serve_queue_depth 1" in text
        assert "serve_pool_sealed_bytes" in text
        assert 'serve_slot_kv_bytes{slot="0"}' in text
        engine.run_until_idle()
        end = engine.lm_scheduler.resource_snapshot()
        assert end["active_slots"] == 0 and end["top_consumers"] == []


# --------------------------------------------------------------------------- #
# Engine / AsyncServer integration
# --------------------------------------------------------------------------- #
class TestEngineIntegration:
    def test_health_report_shape_and_exposition_self_check(self):
        engine = ServingEngine(
            ModelRepository(bits=4, seed=0),
            num_slots=2,
            kv_cache_config=KVCacheConfig(bits=4, page_size=8),
            health=True,
        )
        engine.warm(MODEL, WorkloadFamily.LM)
        engine.serve(lm_requests(11, count=3, max_new_tokens=6))
        report = engine.health_report()
        assert set(report) == {"status", "slo", "alerts", "resources"}
        assert report["status"] in ("ok", "degraded")
        ttft = report["slo"]["default"]["ttft"]
        assert set(ttft) == {
            "attainment", "target", "threshold_seconds", "events",
            "burn_fast", "burn_slow", "firing",
        }
        assert ttft["events"] == 3
        assert report["resources"]["num_slots"] == 2
        assert report["resources"]["batcher_depth"] == 0
        # Acceptance criterion: SLO gauges and resource gauges render, and
        # the whole exposition passes the format self-check.
        text = engine.metrics_text()
        assert "serve_slo_attainment{" in text
        assert "serve_pool_sealed_bytes" in text
        assert "serve_kv_cache_bytes" in text
        counts = validate_exposition(text)
        assert counts["samples"] > 50

    def test_engine_without_health_still_reports_resources(self):
        engine = ServingEngine(
            ModelRepository(bits=4, seed=0),
            num_slots=2,
            kv_cache_config=KVCacheConfig(bits=4, page_size=8),
        )
        assert engine.health is None
        report = engine.health_report()
        assert report["status"] == "ok" and report["slo"] == {}
        assert report["resources"]["active_slots"] == 0

    def test_impossible_ttft_target_degrades_the_engine(self):
        # The smallest bucket bound (0.1 ms) is unreachable for a real decode
        # round, so every TTFT observation burns budget and the alert fires
        # on the first evaluation (both windows agree from a cold start).
        engine = ServingEngine(
            ModelRepository(bits=4, seed=0),
            num_slots=2,
            kv_cache_config=KVCacheConfig(bits=4, page_size=8),
            health=SLOClass(name="default", ttft_target_seconds=1e-4),
        )
        engine.warm(MODEL, WorkloadFamily.LM)
        engine.serve(lm_requests(13, count=2, max_new_tokens=4))
        report = engine.health_report()
        assert report["status"] == "degraded"
        assert report["slo"]["default"]["ttft"]["firing"] is True
        assert report["slo"]["default"]["ttft"]["attainment"] == 0.0
        assert report["alerts"][0]["objective"] == "ttft"
        log = engine.event_log()
        assert any(
            json.loads(line)["type"] == "event" for line in log.splitlines()
        )

    def test_shared_monitor_must_share_the_registry(self):
        foreign = HealthMonitor(ServingStats().registry)
        with pytest.raises(ServingError):
            ServingEngine(ModelRepository(bits=4, seed=0), health=foreign)
        with pytest.raises(ServingError):
            ServingEngine(ModelRepository(bits=4, seed=0), health=object())

    def test_write_event_log(self, tmp_path):
        engine = ServingEngine(
            ModelRepository(bits=4, seed=0),
            num_slots=2,
            kv_cache_config=KVCacheConfig(bits=4, page_size=8),
            tracer=Tracer(),
            health=SLOClass(name="default", ttft_target_seconds=1e-4),
        )
        engine.warm(MODEL, WorkloadFamily.LM)
        engine.serve(lm_requests(17, count=2, max_new_tokens=4))
        path = tmp_path / "events.jsonl"
        lines = engine.write_event_log(path)
        assert lines == len(path.read_text().splitlines()) > 0

    def test_async_server_health_report(self):
        async def main():
            engine = ServingEngine(
                ModelRepository(bits=4, seed=0),
                num_slots=2,
                kv_cache_config=KVCacheConfig(bits=4, page_size=8),
                max_wait=0.001,
                health=True,
            )
            engine.warm(MODEL, WorkloadFamily.LM)
            async with AsyncServer(engine) as server:
                await asyncio.gather(
                    *(server.infer(r) for r in lm_requests(19, count=2, max_new_tokens=4))
                )
                return server.health_report()

        report = asyncio.run(main())
        assert report["slo"]["default"]["availability"]["events"] == 2
        assert report["resources"]["active_slots"] == 0


# --------------------------------------------------------------------------- #
# Registry mirroring on the abort/cancel paths
# --------------------------------------------------------------------------- #
class TestRegistryMirrorOnCancel:
    def finished_by_reason(self, registry):
        counter = registry.get("serve_requests_finished_total")
        return {
            reason: counter.value_sum(reason=reason, slo_class="default")
            for reason in ("stop", "length", "aborted", "error", "deadline")
        }

    def test_cancel_mid_round_keeps_registry_and_summary_consistent(self):
        engine = ServingEngine(
            ModelRepository(bits=4, seed=0),
            num_slots=4,
            kv_cache_config=KVCacheConfig(bits=4, page_size=8),
        )
        engine.warm(MODEL, WorkloadFamily.LM)
        requests = lm_requests(23, count=3, max_new_tokens=12)
        for request in requests:
            engine.submit(request)
        # A few rounds in, every slot has streamed at least its first token.
        for _ in range(3):
            engine.step(force=True)
        cancelled = engine.cancel(requests[1].request_id)
        assert cancelled.finish_reason == "aborted"
        engine.run_until_idle()

        summary = engine.stats.summary()
        mirrored = self.finished_by_reason(engine.stats.registry)
        assert mirrored == summary.finish_reasons
        assert mirrored["aborted"] == 1
        assert sum(mirrored.values()) == len(requests)
        # TTFT was observed once per request that produced a first token —
        # the cancelled one included — and latency once per finished request.
        registry = engine.stats.registry
        assert registry.get("serve_ttft_seconds").count == len(requests)
        assert registry.get("serve_request_latency_seconds").count == len(requests)
        assert summary.requests == len(requests)

    def test_cancel_while_queued_mirrors_without_ttft(self):
        engine = ServingEngine(
            ModelRepository(bits=4, seed=0),
            num_slots=1,
            kv_cache_config=KVCacheConfig(bits=4, page_size=8),
        )
        engine.warm(MODEL, WorkloadFamily.LM)
        active, queued = lm_requests(29, count=2, max_new_tokens=6)
        engine.submit(active)
        engine.submit(queued)
        engine.step(force=True)  # `active` takes the only slot
        engine.cancel(queued.request_id)
        engine.run_until_idle()
        summary = engine.stats.summary()
        mirrored = self.finished_by_reason(engine.stats.registry)
        assert mirrored == summary.finish_reasons
        assert mirrored["aborted"] == 1
        # The queued request never decoded: exactly one TTFT observation, but
        # two completion latencies (cancellation is a completion).
        registry = engine.stats.registry
        assert registry.get("serve_ttft_seconds").count == 1
        assert registry.get("serve_request_latency_seconds").count == 2

    def test_abandoned_async_stream_mirrors_as_aborted(self):
        async def main():
            engine = ServingEngine(
                ModelRepository(bits=4, seed=0),
                num_slots=2,
                kv_cache_config=KVCacheConfig(bits=4, page_size=8),
                max_wait=0.001,
            )
            engine.warm(MODEL, WorkloadFamily.LM)
            async with AsyncServer(engine) as server:
                request = lm_requests(31, count=1, max_new_tokens=32)[0]
                seen = 0
                async for chunk in server.stream(request):
                    seen += 1
                    if seen == 2:
                        break  # abandon mid-generation
            return engine, seen

        engine, seen = asyncio.run(main())
        assert seen == 2
        summary = engine.stats.summary()
        mirrored = TestRegistryMirrorOnCancel.finished_by_reason(self, engine.stats.registry)
        assert mirrored == summary.finish_reasons
        assert mirrored["aborted"] == 1 and summary.finish_aborted == 1
        # The stream produced tokens before abandonment, so TTFT exists and
        # stays consistent between the histogram and the summary window.
        registry = engine.stats.registry
        assert registry.get("serve_ttft_seconds").count == 1
        assert registry.get("serve_request_latency_seconds").count == 1
        assert summary.ttft_p95_ms > 0
