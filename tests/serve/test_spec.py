"""Draft-model speculative decoding: drafts, pairing, equivalence, lifecycle.

The load-bearing guarantee is **exactness**: speculative greedy decode must
be token-for-token identical to non-speculative greedy decode — fp32 and
packed caches alike — because every emitted token is sampled from the
target's own verified distribution and the rejected suffix of the optimistic
KV append rolls back losslessly (seals deferred during verify, page-boundary
tokens routed through eager sealing).
"""

import dataclasses

import numpy as np
import pytest

from repro.models.zoo import (
    build_causal_lm,
    build_draft_lm,
    parse_draft_name,
)
from repro.serve import (
    ContinuousBatchingScheduler,
    InferenceRequest,
    KVCacheConfig,
    ModelRepository,
    SamplingParams,
    ServingEngine,
    ServingError,
    SpeculativeConfig,
    SpeculativeDecoder,
    WorkloadFamily,
)
from repro.serve.stats import ServingStats

MODEL = "gpt2-xl"
VOCAB = 96

#: Cheap calibration for tests: the heads only need to exist and propose,
#: not to maximize acceptance.
TEST_SPEC = SpeculativeConfig(
    num_speculative_tokens=2,
    calibration_sequences=6,
    calibration_tokens=12,
    calibration_prompt_len=4,
)


@pytest.fixture(scope="module")
def repository():
    repo = ModelRepository(bits=4, seed=0)
    repo.get(MODEL, WorkloadFamily.LM)
    return repo


@pytest.fixture(scope="module")
def packed_config():
    return KVCacheConfig(bits=4, page_size=8, prefix_sharing=False)


@pytest.fixture(scope="module")
def fp_config():
    return KVCacheConfig(bits=4, page_size=8, prefix_sharing=False, quantize=False)


@pytest.fixture(scope="module")
def packed_decoder(repository, packed_config):
    decoder = SpeculativeDecoder(repository, TEST_SPEC, target_cache_config=packed_config)
    decoder.warm(MODEL)
    return decoder


@pytest.fixture(scope="module")
def fp_decoder(repository, fp_config):
    decoder = SpeculativeDecoder(repository, TEST_SPEC, target_cache_config=fp_config)
    decoder.warm(MODEL)
    return decoder


def drain(repository, cache_config, requests, speculative=None, num_slots=4):
    """Submit ``requests`` and drain; returns (token lists in submit order, summary)."""
    stats = ServingStats()
    scheduler = ContinuousBatchingScheduler(
        repository,
        num_slots=num_slots,
        cache_config=cache_config,
        stats=stats,
        speculative=speculative,
    )
    ids = [scheduler.submit(request) for request in requests]
    outputs = {r.request_id: list(r.output.token_ids) for r in scheduler.run_until_idle()}
    return [outputs[request_id] for request_id in ids], stats.summary(), scheduler


def lm_requests(rng_seed, count=4, seq_len=8, max_new_tokens=16, model=MODEL, **sampling):
    rng = np.random.default_rng(rng_seed)
    return [
        InferenceRequest(
            model,
            WorkloadFamily.LM,
            rng.integers(0, VOCAB, size=seq_len),
            sampling=SamplingParams(max_new_tokens=max_new_tokens, **sampling),
        )
        for _ in range(count)
    ]


# --------------------------------------------------------------------------- #
# Draft builder
# --------------------------------------------------------------------------- #
class TestDraftBuilder:
    def test_parse_draft_name(self):
        assert parse_draft_name("gpt2-xl") is None
        assert parse_draft_name("gpt2-xl@draft1") == ("gpt2-xl", 1)
        assert parse_draft_name("opt-6.7b@draft2") == ("opt-6.7b", 2)
        for bad in ("gpt2-xl@draftx", "@draft1", "gpt2-xl@draft0"):
            with pytest.raises(ValueError):
                parse_draft_name(bad)

    def test_truncated_prefix_shares_weights_bitwise(self):
        full = build_causal_lm(MODEL, seed=0)
        draft = build_draft_lm(MODEL, seed=0, num_layers=1)
        assert draft.backbone.num_layers == 1
        assert draft.config.num_layers == 1
        assert draft.config.name == "gpt2-xl@draft1"
        full_state = full.state_dict()
        for name, value in draft.state_dict().items():
            np.testing.assert_array_equal(value, full_state[name])

    def test_build_causal_lm_delegates_draft_names(self):
        via_name = build_causal_lm("gpt2-xl@draft1", seed=0)
        direct = build_draft_lm("gpt2-xl", seed=0, num_layers=1)
        for (_, a), (_, b) in zip(
            sorted(via_name.state_dict().items()), sorted(direct.state_dict().items())
        ):
            np.testing.assert_array_equal(a, b)

    def test_draft_must_be_smaller_than_target(self):
        with pytest.raises(ValueError):
            build_draft_lm(MODEL, seed=0, num_layers=3)  # target depth

    def test_packed_draft_streams_are_target_subset(self, repository):
        target = repository.get(MODEL, WorkloadFamily.LM)
        draft = repository.get("gpt2-xl@draft1", WorkloadFamily.LM)
        assert set(draft.packed_weights) <= set(target.packed_weights)
        for name, stream in draft.packed_weights.items():
            np.testing.assert_array_equal(
                stream.data, target.packed_weights[name].data
            )
        assert draft.packed_bytes < target.packed_bytes


# --------------------------------------------------------------------------- #
# Greedy equivalence — the acceptance-critical property
# --------------------------------------------------------------------------- #
class TestGreedyEquivalence:
    @pytest.mark.parametrize("seed", [11, 29])
    def test_packed_tokens_identical(self, repository, packed_config, packed_decoder, seed):
        requests = lm_requests(seed)
        plain, _, _ = drain(repository, packed_config, lm_requests(seed))
        spec, summary, _ = drain(
            repository, packed_config, requests, speculative=packed_decoder
        )
        assert spec == plain
        assert summary.draft_proposed_tokens > 0

    @pytest.mark.parametrize("seed", [11, 29])
    def test_fp32_tokens_identical(self, repository, fp_config, fp_decoder, seed):
        plain, _, _ = drain(repository, fp_config, lm_requests(seed))
        spec, summary, _ = drain(
            repository, fp_config, lm_requests(seed), speculative=fp_decoder
        )
        assert spec == plain
        assert summary.draft_proposed_tokens > 0

    def test_mixed_sequence_lengths_identical(self, repository, packed_config, packed_decoder):
        rng = np.random.default_rng(5)

        def build():
            return [
                InferenceRequest(
                    MODEL,
                    WorkloadFamily.LM,
                    np.random.default_rng(100 + i).integers(0, VOCAB, size=length),
                    sampling=SamplingParams(max_new_tokens=12 + i),
                )
                for i, length in enumerate((3, 9, 17, 6))
            ]

        plain, _, _ = drain(repository, packed_config, build())
        spec, _, _ = drain(repository, packed_config, build(), speculative=packed_decoder)
        assert spec == plain

    def test_stop_tokens_respected(self, repository, packed_config, packed_decoder):
        plain, _, _ = drain(repository, packed_config, lm_requests(7))
        stop = plain[0][4]  # a token the greedy stream actually emits

        def build():
            return lm_requests(7, stop_token_ids=(stop,))

        plain_stop, _, _ = drain(repository, packed_config, build())
        spec_stop, _, _ = drain(
            repository, packed_config, build(), speculative=packed_decoder
        )
        assert spec_stop == plain_stop
        assert plain_stop[0][-1] == stop
        assert len(plain_stop[0]) <= len(plain[0])

    @pytest.mark.parametrize("max_new", [1, 2])
    def test_tiny_budgets(self, repository, packed_config, packed_decoder, max_new):
        plain, _, _ = drain(
            repository, packed_config, lm_requests(3, max_new_tokens=max_new)
        )
        spec, _, _ = drain(
            repository,
            packed_config,
            lm_requests(3, max_new_tokens=max_new),
            speculative=packed_decoder,
        )
        assert spec == plain
        assert all(len(tokens) == max_new for tokens in spec)


# --------------------------------------------------------------------------- #
# Scheduler integration
# --------------------------------------------------------------------------- #
class TestSchedulerIntegration:
    def test_acceptance_counters_consistent(self, repository, packed_config, packed_decoder):
        _, summary, _ = drain(
            repository, packed_config, lm_requests(13), speculative=packed_decoder
        )
        assert 0 <= summary.draft_accepted_tokens <= summary.draft_proposed_tokens
        assert 0.0 <= summary.draft_acceptance_rate <= 1.0
        assert summary.generated_tokens == 4 * 16

    def test_unpairable_model_falls_back_to_plain(self, repository, packed_config):
        # A draft served as the *target* cannot be paired again; it must
        # still decode correctly (plain path), and the error is recorded.
        decoder = SpeculativeDecoder(
            repository, TEST_SPEC, target_cache_config=packed_config
        )
        requests = lm_requests(17, count=2, model="gpt2-xl@draft1", max_new_tokens=6)
        plain, _, _ = drain(
            repository, packed_config, lm_requests(17, count=2, model="gpt2-xl@draft1", max_new_tokens=6)
        )
        spec, summary, _ = drain(
            repository, packed_config, requests, speculative=decoder
        )
        assert spec == plain
        assert summary.draft_proposed_tokens == 0
        assert ("gpt2-xl@draft1", WorkloadFamily.LM) in decoder.pair_errors

    def test_mixed_pairable_and_unpairable_slots(self, repository, packed_config, packed_decoder):
        def build():
            return (
                lm_requests(19, count=2, max_new_tokens=8)
                + lm_requests(23, count=2, model="gpt2-xl@draft1", max_new_tokens=8)
            )

        plain, _, _ = drain(repository, packed_config, build())
        spec, summary, _ = drain(
            repository, packed_config, build(), speculative=packed_decoder
        )
        assert spec == plain
        assert summary.draft_proposed_tokens > 0

    def test_cancel_with_speculation_releases_pages(self, repository, packed_config, packed_decoder):
        scheduler = ContinuousBatchingScheduler(
            repository,
            num_slots=2,
            cache_config=packed_config,
            speculative=packed_decoder,
        )
        requests = lm_requests(31, count=3, max_new_tokens=24)
        for request in requests:
            scheduler.submit(request)
        for _ in range(3):
            scheduler.step()
        cancelled = scheduler.cancel(requests[0].request_id)
        assert cancelled.output.finish_reason == "aborted"
        scheduler.run_until_idle()
        assert scheduler.page_pool.num_entries == 0
        assert scheduler.num_active == 0

    def test_seeded_sampled_spec_is_deterministic(self, repository, packed_config, packed_decoder):
        def build():
            return lm_requests(37, temperature=0.8, top_k=20, seed=9)

        first, _, _ = drain(repository, packed_config, build(), speculative=packed_decoder)
        second, _, _ = drain(repository, packed_config, build(), speculative=packed_decoder)
        assert first == second
        assert all(len(tokens) == 16 for tokens in first)

    def test_streamed_chunks_match_final_tokens(self, repository, packed_config, packed_decoder):
        scheduler = ContinuousBatchingScheduler(
            repository,
            num_slots=2,
            cache_config=packed_config,
            speculative=packed_decoder,
        )
        requests = lm_requests(41, count=2, max_new_tokens=10)
        for request in requests:
            scheduler.submit(request)
        chunks = {request.request_id: [] for request in requests}
        results = []
        while len(scheduler):
            results.extend(scheduler.step())
            for chunk in scheduler.take_chunks():
                if chunk.is_token:
                    chunks[chunk.request_id].append(chunk.token_id)
        outputs = {r.request_id: list(r.output.token_ids) for r in results}
        for request in requests:
            assert chunks[request.request_id] == outputs[request.request_id]

    def test_warm_speculative_requires_speculation(self, repository, packed_config):
        scheduler = ContinuousBatchingScheduler(
            repository, num_slots=2, cache_config=packed_config
        )
        with pytest.raises(ServingError):
            scheduler.warm_speculative(MODEL)

    def test_invalid_speculative_argument(self, repository):
        with pytest.raises(ServingError):
            ContinuousBatchingScheduler(repository, speculative=object())

    def test_serving_engine_end_to_end(self, repository, packed_decoder, packed_config):
        def engine(speculative):
            return ServingEngine(
                repository,
                kv_cache_config=packed_config,
                speculative=speculative,
            )

        plain_engine = engine(None)
        spec_engine = engine(packed_decoder)
        spec_engine.warm_speculative(MODEL)
        plain = plain_engine.serve(lm_requests(43, count=3, max_new_tokens=8))
        spec = spec_engine.serve(lm_requests(43, count=3, max_new_tokens=8))
        assert [list(r.output.token_ids) for r in spec] == [
            list(r.output.token_ids) for r in plain
        ]
        assert spec_engine.stats.summary().draft_proposed_tokens > 0


# --------------------------------------------------------------------------- #
# Config validation
# --------------------------------------------------------------------------- #
class TestSpeculativeConfig:
    @pytest.mark.parametrize(
        "kwargs",
        [
            {"draft_layers": 0},
            {"num_speculative_tokens": 0},
            {"margin_threshold": -1.0},
            {"first_margin_threshold": -0.5},
            {"calibration_sequences": 1},
            {"calibration_tokens": 2, "num_speculative_tokens": 3},
            {"calibration_prompt_len": 1},
            {"feature_width": -1},
        ],
    )
    def test_rejects_bad_values(self, kwargs):
        with pytest.raises(ServingError):
            SpeculativeConfig(**kwargs)

    def test_gating_tightens_acceptance(self, repository, packed_config):
        """Higher margins must never propose more tokens than lower margins."""
        loose = SpeculativeDecoder(
            repository,
            dataclasses.replace(TEST_SPEC, first_margin_threshold=0.0, margin_threshold=0.0),
            target_cache_config=packed_config,
        )
        tight = SpeculativeDecoder(
            repository,
            dataclasses.replace(TEST_SPEC, first_margin_threshold=6.0, margin_threshold=8.0),
            target_cache_config=packed_config,
        )
        _, loose_summary, _ = drain(
            repository, packed_config, lm_requests(47), speculative=loose
        )
        _, tight_summary, _ = drain(
            repository, packed_config, lm_requests(47), speculative=tight
        )
        assert tight_summary.draft_proposed_tokens <= loose_summary.draft_proposed_tokens
