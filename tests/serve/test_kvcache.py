"""Tests for the OVP-paged KV cache: paging, accounting, decode fidelity."""

import numpy as np
import pytest

from repro.core.ovp import PackedOVPTensor
from repro.models.zoo import build_causal_lm, build_classifier
from repro.serve.kvcache import (
    KVCacheConfig,
    LayerKVCache,
    SequenceKVCache,
    cache_for_model,
)
from repro.serve.requests import ServingError

HEADS, DIM = 4, 16


def step(rng, t=1, scale=1.0):
    return rng.normal(0.0, scale, size=(HEADS, t, DIM))


class TestConfig:
    def test_bits_validated(self):
        with pytest.raises(ServingError):
            KVCacheConfig(bits=6)

    def test_page_size_validated(self):
        with pytest.raises(ServingError):
            KVCacheConfig(page_size=0)

    def test_codec_matches_bits(self):
        assert KVCacheConfig(bits=4).make_codec().normal_dtype.bits == 4
        assert KVCacheConfig(bits=8).make_codec().normal_dtype.bits == 8


class TestLayerCache:
    def test_append_and_roundtrip_fp_mode_is_exact(self):
        rng = np.random.default_rng(0)
        cache = LayerKVCache(HEADS, DIM, KVCacheConfig(quantize=False, page_size=4))
        ks, vs = [], []
        for t in (3, 1, 1, 6, 1):
            k, v = step(rng, t), step(rng, t)
            ks.append(k)
            vs.append(v)
            cache.append(k, v)
        k_all, v_all = cache.kv()
        np.testing.assert_array_equal(k_all, np.concatenate(ks, axis=1))
        np.testing.assert_array_equal(v_all, np.concatenate(vs, axis=1))
        assert cache.seq_len == 12

    def test_pages_seal_as_packed_byte_streams(self):
        rng = np.random.default_rng(1)
        cache = LayerKVCache(HEADS, DIM, KVCacheConfig(bits=4, page_size=4))
        cache.append(step(rng, 10), step(rng, 10))
        # 10 steps with page_size 4 -> 2 sealed pages each for K and V.
        assert cache.num_sealed_pages == 4
        assert all(isinstance(h.payload, PackedOVPTensor) for h in cache._sealed_k)
        assert all(h.refcount == 1 for h in cache._sealed_k + cache._sealed_v)
        k_all, v_all = cache.kv()
        assert k_all.shape == (HEADS, 10, DIM)
        assert v_all.shape == (HEADS, 10, DIM)

    def test_quantized_kv_close_to_source(self):
        rng = np.random.default_rng(2)
        cache = LayerKVCache(HEADS, DIM, KVCacheConfig(bits=8, page_size=4))
        k, v = step(rng, 8), step(rng, 8)
        cache.append(k, v)
        k_all, _ = cache.kv()
        # RMS (not max): OVP prunes the victim next to each outlier to zero,
        # so a handful of elements carry their full magnitude as error.
        rms = float(np.sqrt(np.mean((k_all - k) ** 2)))
        assert rms < 0.1 * float(np.std(k))

    def test_bytes_accounting(self):
        rng = np.random.default_rng(3)
        cache = LayerKVCache(HEADS, DIM, KVCacheConfig(bits=4, page_size=4))
        cache.append(step(rng, 8), step(rng, 8))  # fully sealed
        elements = 2 * HEADS * 8 * DIM
        assert cache.kv_elements == elements
        assert cache.fp32_bytes == elements * 4
        assert cache.cache_bytes == elements // 2  # 4 bits = 1/2 byte/element
        cache.append(step(rng, 1), step(rng, 1))  # one open fp32 step
        assert cache.cache_bytes == elements // 2 + 2 * HEADS * DIM * 4

    def test_shape_mismatch_rejected(self):
        cache = LayerKVCache(HEADS, DIM, KVCacheConfig())
        rng = np.random.default_rng(0)
        with pytest.raises(ServingError):
            cache.append(step(rng, 1), rng.normal(size=(HEADS, 1, DIM + 1)))
        with pytest.raises(ServingError):
            cache.append(rng.normal(size=(HEADS + 1, 1, DIM)), step(rng, 1))

    def test_empty_cache_attend_rejected(self):
        cache = LayerKVCache(HEADS, DIM, KVCacheConfig())
        with pytest.raises(ServingError):
            cache.kv()

    def test_kv_many_matches_individual_kv(self):
        rng = np.random.default_rng(4)
        caches = []
        for t in (3, 9, 17):
            cache = LayerKVCache(HEADS, DIM, KVCacheConfig(bits=4, page_size=4))
            cache.append(step(rng, t), step(rng, t))
            caches.append(cache)
        batched = LayerKVCache.kv_many(caches)
        for cache, (k_b, v_b) in zip(caches, batched):
            k, v = cache.kv()
            np.testing.assert_array_equal(k_b, k)
            np.testing.assert_array_equal(v_b, v)


class TestSequenceCache:
    def test_layers_and_compression(self):
        rng = np.random.default_rng(5)
        cache = SequenceKVCache(3, HEADS, DIM, KVCacheConfig(bits=4, page_size=4))
        for layer in range(3):
            cache.layer(layer).append(step(rng, 16), step(rng, 16))
        assert cache.seq_len == 16
        # Fully sealed 4-bit pages: 8x smaller than fp32.
        assert cache.compression_ratio == pytest.approx(8.0)
        summary = cache.memory_summary()
        assert summary["kv_fp32_bytes"] == 8 * summary["kv_cache_bytes"]
        assert summary["sealed_pages"] == 3 * 2 * 4

    def test_needs_layers(self):
        with pytest.raises(ServingError):
            SequenceKVCache(0, HEADS, DIM)


class TestCacheForModel:
    def test_builds_matching_geometry(self):
        model = build_causal_lm("gpt2-xl", seed=0)
        cache = cache_for_model(model, KVCacheConfig(bits=4))
        backbone = model.backbone
        assert cache.num_layers == backbone.num_layers
        layer = cache.layer(0)
        attn = backbone.layer_0.self_attention
        assert layer.num_heads == attn.num_heads
        assert layer.head_dim == attn.head_dim

    def test_rejects_non_decoder_models(self):
        model = build_classifier("bert-base", num_classes=2, seed=0)
        with pytest.raises(ServingError):
            cache_for_model(model)


class TestTruncateAndDeferredSeals:
    """Rollback support for speculative decoding: ``truncate_to`` and the
    deferred-seal append mode (``hold_seals``/``flush_seals``)."""

    def _filled(self, config, total, rng=None, pool=None):
        rng = rng or np.random.default_rng(0)
        cache = LayerKVCache(HEADS, DIM, config, pool=pool)
        values = step(rng, t=total)
        cache.append(values, values * 0.5)
        return cache, values

    def test_truncate_within_open_page(self):
        config = KVCacheConfig(quantize=False, page_size=4)
        cache, values = self._filled(config, 7)
        cache.truncate_to(5)
        assert cache.seq_len == 5
        k, _ = cache.kv()
        np.testing.assert_array_equal(k, values[:, :5])
        # the freed rows are rewritable
        cache.append(step(np.random.default_rng(9), t=1), step(np.random.default_rng(9), t=1))
        assert cache.seq_len == 6

    def test_truncate_to_current_length_is_noop(self):
        config = KVCacheConfig(bits=4, page_size=4)
        cache, _ = self._filled(config, 9)
        handles = list(cache._sealed_k)
        before = cache.pool.counters()
        cache.truncate_to(9)
        assert cache.seq_len == 9
        assert cache._sealed_k == handles
        assert cache.pool.counters() == before

    def test_truncate_bounds_validated(self):
        config = KVCacheConfig(bits=4, page_size=4)
        cache, _ = self._filled(config, 6)
        with pytest.raises(ServingError):
            cache.truncate_to(-1)
        with pytest.raises(ServingError):
            cache.truncate_to(7)

    @pytest.mark.parametrize("quantize", [False, True])
    def test_truncate_into_sealed_page_reopens_decoded_rows(self, quantize):
        config = KVCacheConfig(bits=4, page_size=4, quantize=quantize)
        cache, _ = self._filled(config, 10)  # 2 sealed pages + 2 open rows
        decoded = cache.pool.decoded_many([cache._sealed_k[1]], cache.codec)[0].copy()
        cache.truncate_to(6)  # cut inside sealed page 1
        assert cache.seq_len == 6
        assert len(cache._sealed_k) == 1
        k, _ = cache.kv()
        np.testing.assert_array_equal(k[:, 4:6], decoded[:, :2])

    def test_truncate_shared_page_is_copy_on_write(self):
        config = KVCacheConfig(bits=4, page_size=4)
        owner, _ = self._filled(config, 9)
        borrower = LayerKVCache(HEADS, DIM, config, pool=owner.pool)
        borrower.attach(owner._sealed_k[:2], owner._sealed_v[:2], 8)
        shared = owner._sealed_k[1]
        assert shared.refcount == 2
        before_k, before_v = borrower.kv()
        before_k, before_v = before_k.copy(), before_v.copy()
        owner.truncate_to(6)  # cuts inside the shared page
        # the other holder's view is untouched and the page stays alive
        after_k, after_v = borrower.kv()
        np.testing.assert_array_equal(after_k, before_k)
        np.testing.assert_array_equal(after_v, before_v)
        assert shared.refcount == 1
        assert owner.pool.num_entries > 0

    def test_truncate_releases_dropped_pages(self):
        config = KVCacheConfig(bits=4, page_size=4)
        cache, _ = self._filled(config, 12)  # 3 sealed pages
        dropped_before = cache.pool.pages_dropped
        cache.truncate_to(4)
        # pages 1 and 2 released: 2 K + 2 V pages dropped
        assert cache.pool.pages_dropped == dropped_before + 4
        assert cache.num_sealed_pages == 2  # one K + one V page

    @pytest.mark.parametrize("quantize", [False, True])
    def test_deferred_seals_match_eager_bitwise(self, quantize):
        """hold → append across page boundaries → flush = eager appends."""
        rng = np.random.default_rng(3)
        values = step(rng, t=11)
        config = KVCacheConfig(bits=4, page_size=4, quantize=quantize)
        eager = LayerKVCache(HEADS, DIM, config)
        for t in range(11):
            eager.append(values[:, t:t + 1], values[:, t:t + 1] * 0.5)
        deferred = LayerKVCache(HEADS, DIM, config)
        deferred.append(values[:, :5], values[:, :5] * 0.5)
        deferred.hold_seals()
        deferred.append(values[:, 5:], values[:, 5:] * 0.5)
        assert deferred.num_sealed_pages == 2  # only the pre-hold page pair
        deferred.flush_seals()
        assert deferred.num_sealed_pages == eager.num_sealed_pages
        for ours, theirs in zip(deferred._sealed_k, eager._sealed_k):
            if quantize:
                np.testing.assert_array_equal(ours.payload.data, theirs.payload.data)
            else:
                np.testing.assert_array_equal(ours.payload, theirs.payload)
        ek, ev = eager.kv()
        dk, dv = deferred.kv()
        np.testing.assert_array_equal(dk, ek)
        np.testing.assert_array_equal(dv, ev)

    def test_truncate_under_hold_matches_eager_appends(self):
        """The speculative pattern — hold, append m, truncate back, flush —
        leaves the cache bitwise identical to eagerly appending only the
        kept tokens (flush seals from the same full-precision rows)."""
        rng = np.random.default_rng(4)
        config = KVCacheConfig(bits=4, page_size=4)
        cache, values = self._filled(config, 6)
        cache.hold_seals()
        speculative = step(rng, t=5)
        cache.append(speculative, speculative * 0.5)
        assert cache.seq_len == 11
        cache.truncate_to(8)  # keep two speculative tokens
        cache.flush_seals()
        assert cache.seq_len == 8
        reference = LayerKVCache(HEADS, DIM, config)
        kept = np.concatenate([values, speculative[:, :2]], axis=1)
        reference.append(kept, kept * 0.5)
        rk, rv = reference.kv()
        k, v = cache.kv()
        np.testing.assert_array_equal(k, rk)
        np.testing.assert_array_equal(v, rv)

    def test_release_clears_hold_flag(self):
        config = KVCacheConfig(bits=4, page_size=4)
        cache, _ = self._filled(config, 6)
        cache.hold_seals()
        cache.release()
        assert not cache._hold_seals
        assert cache.seq_len == 0

    def test_sequence_cache_truncates_all_layers(self):
        model = build_causal_lm("gpt2-xl", seed=0)
        cache = cache_for_model(model, KVCacheConfig(bits=4, page_size=4))
        tokens = np.random.default_rng(0).integers(0, 96, size=10)
        model.log_probs_incremental(tokens[None], [cache])
        cache.truncate_to(7)
        assert cache.seq_len == 7
        for i in range(cache.num_layers):
            assert cache.layer(i).seq_len == 7
