"""Multi-tenant gateway: auth, rate limits, quotas, envelopes, metrics."""

import json

import numpy as np
import pytest

from repro.serve.engine import ServingEngine
from repro.serve.errors import (
    AuthenticationError,
    QuotaExceededError,
    RateLimitedError,
    ServingError,
)
from repro.serve.gateway import (
    ErrorEnvelope,
    Gateway,
    GatewayConfig,
    ResponseEnvelope,
    TenantConfig,
)
from repro.serve.kvcache import KVCacheConfig
from repro.serve.repository import ModelRepository
from repro.serve.requests import InferenceRequest, WorkloadFamily


@pytest.fixture(scope="module")
def repo():
    repository = ModelRepository(bits=4, seed=0)
    repository.get("gpt2-xl", WorkloadFamily.LM)
    return repository


class FakeClock:
    def __init__(self):
        self.t = 0.0

    def __call__(self):
        return self.t


def tenants():
    return (
        TenantConfig(
            name="interactive",
            api_key="key-interactive",
            priority=10,
            requests_per_second=2.0,
            burst=2,
            max_concurrent=4,
        ),
        TenantConfig(
            name="batch", api_key="key-batch", priority=0, max_concurrent=2
        ),
    )


def build_gateway(repo, clock=None, config=None, **engine_kwargs):
    clock = clock or FakeClock()
    config = config or GatewayConfig(tenants=tenants())
    engine = ServingEngine(
        repo,
        clock=clock,
        kv_cache_config=KVCacheConfig(bits=4, page_size=8),
        num_slots=4,
        admission=config.admission_policy(),
        health=config.health_config(),
        **engine_kwargs,
    )
    return Gateway(engine, config), clock


def lm_request(seq_len=8, max_new_tokens=2, seed=0, **kwargs):
    rng = np.random.default_rng(seed)
    return InferenceRequest(
        "gpt2-xl",
        WorkloadFamily.LM,
        rng.integers(0, 96, size=seq_len),
        max_new_tokens=max_new_tokens,
        **kwargs,
    )


class TestConfig:
    def test_tenant_slo_class_defaults_to_name(self):
        tenant = TenantConfig(name="acme", api_key="k")
        assert tenant.slo_class == "acme"
        assert tenant.slo().name == "acme"

    def test_duplicate_names_and_keys_rejected(self):
        with pytest.raises(ServingError):
            GatewayConfig(tenants=(
                TenantConfig(name="a", api_key="k1"),
                TenantConfig(name="a", api_key="k2"),
            ))
        with pytest.raises(ServingError):
            GatewayConfig(tenants=(
                TenantConfig(name="a", api_key="k"),
                TenantConfig(name="b", api_key="k"),
            ))

    def test_derived_admission_policy_and_health_config(self):
        config = GatewayConfig(tenants=tenants(), max_queue_depth=9)
        policy = config.admission_policy()
        assert policy.max_queue_depth == 9
        assert policy.class_priority == {"interactive": 10, "batch": 0}
        assert policy.preempt
        health = config.health_config()
        assert {c.name for c in health.classes} == {"interactive", "batch"}

    def test_field_validation(self):
        with pytest.raises(ServingError):
            TenantConfig(name="", api_key="k")
        with pytest.raises(ServingError):
            TenantConfig(name="a", api_key="k", requests_per_second=0)
        with pytest.raises(ServingError):
            TenantConfig(name="a", api_key="k", burst=0)
        with pytest.raises(ServingError):
            TenantConfig(name="a", api_key="k", max_concurrent=0)
        with pytest.raises(ServingError):
            GatewayConfig(tenants=())


class TestAuthentication:
    def test_unknown_key_is_401(self, repo):
        gateway, _ = build_gateway(repo)
        envelope = gateway.submit("wrong-key", lm_request())
        assert envelope.status == 401
        assert envelope.error.code == "AuthenticationError"
        assert not envelope.error.retryable

    def test_auth_rejection_counted_without_echoing_key(self, repo):
        gateway, _ = build_gateway(repo)
        gateway.submit("attacker-key", lm_request())
        text = gateway.engine.metrics_text()
        assert "attacker-key" not in text
        assert 'reason="auth"' in text

    def test_authenticate_raises_for_async_path(self, repo):
        gateway, _ = build_gateway(repo)
        with pytest.raises(AuthenticationError):
            gateway.authenticate("nope")


class TestRateLimitAndQuota:
    def test_token_bucket_denies_then_refills(self, repo):
        gateway, clock = build_gateway(repo)
        assert gateway.submit("key-interactive", lm_request(seed=1)).status == 202
        assert gateway.submit("key-interactive", lm_request(seed=2)).status == 202
        third = gateway.submit("key-interactive", lm_request(seed=3))
        assert third.status == 429
        assert third.error.code == "RateLimitedError"
        assert third.error.retryable
        clock.t += 1.0  # 2 rps -> two tokens refill
        assert gateway.submit("key-interactive", lm_request(seed=4)).status == 202

    def test_quota_denies_until_requests_finish(self, repo):
        gateway, _ = build_gateway(repo)
        first = lm_request(seed=10)
        second = lm_request(seed=11)
        assert gateway.submit("key-batch", first).status == 202
        assert gateway.submit("key-batch", second).status == 202
        over = gateway.submit("key-batch", lm_request(seed=12))
        assert over.status == 429
        assert over.error.code == "QuotaExceededError"
        assert gateway.inflight("batch") == 2
        gateway.run_until_idle()
        assert gateway.inflight("batch") == 0
        assert gateway.submit("key-batch", lm_request(seed=13)).status == 202

    def test_rejections_carry_tenant_label(self, repo):
        gateway, _ = build_gateway(repo)
        for seed in range(3):
            gateway.submit("key-interactive", lm_request(seed=seed))
        text = gateway.engine.metrics_text()
        assert (
            'serve_requests_rejected_total{reason="rate_limit",'
            'slo_class="interactive",tenant="interactive"}'
        ) in text


class TestEnvelopes:
    def test_accept_then_poll_then_result(self, repo):
        gateway, _ = build_gateway(repo)
        request = lm_request(seed=20, max_new_tokens=3)
        accepted = gateway.submit("key-interactive", request)
        assert accepted.status == 202 and accepted.ok
        assert accepted.body == {"state": "accepted"}
        pending = gateway.poll(request.request_id)
        assert pending.status == 202
        gateway.run_until_idle()
        done = gateway.poll(request.request_id)
        assert done.status == 200
        assert done.tenant == "interactive"
        assert done.body["finish_reason"] == "length"
        assert len(done.body["token_ids"]) == 3
        # The envelope is JSON-serializable end to end.
        payload = json.loads(done.to_json())
        assert payload["status"] == 200

    def test_unknown_request_is_404(self, repo):
        gateway, _ = build_gateway(repo)
        missing = gateway.poll("never-submitted")
        assert missing.status == 404
        assert missing.error.code == "not_found"

    def test_handle_wire_payloads(self, repo):
        gateway, _ = build_gateway(repo)
        ok = gateway.handle({
            "api_key": "key-batch",
            "model": "gpt2-xl",
            "family": "lm",
            "token_ids": [1, 2, 3, 4],
            "max_new_tokens": 2,
        })
        assert ok.status == 202
        gateway.run_until_idle()
        assert gateway.poll(ok.request_id).status == 200

        assert gateway.handle("not a dict").status == 400
        assert gateway.handle({"model": "gpt2-xl"}).status == 401
        bad = gateway.handle({"api_key": "key-batch", "model": "gpt2-xl"})
        assert bad.status == 400

    def test_malformed_request_is_400(self, repo):
        gateway, _ = build_gateway(repo)
        envelope = gateway.handle({
            "api_key": "key-batch",
            "model": "no-such-model",
            "token_ids": [1, 2],
            "max_new_tokens": 1,
        })
        gateway.run_until_idle()
        final = gateway.poll(envelope.request_id)
        # Unknown model fails at serve time: terminal 500 with the error.
        assert final.status == 500
        assert not final.error.retryable


class TestTenantThreading:
    def test_finished_metrics_carry_tenant(self, repo):
        gateway, _ = build_gateway(repo)
        gateway.submit("key-interactive", lm_request(seed=30))
        gateway.run_until_idle()
        text = gateway.engine.metrics_text()
        assert (
            'serve_requests_finished_total{reason="length",'
            'slo_class="interactive",tenant="interactive"}'
        ) in text
        assert (
            'serve_requests_submitted_total{tenant="interactive",'
            'slo_class="interactive"}'
        ) in text

    def test_per_tenant_slo_gauges(self, repo):
        gateway, _ = build_gateway(repo)
        gateway.submit("key-interactive", lm_request(seed=31))
        gateway.run_until_idle()
        gateway.engine.health.evaluate()
        report = gateway.engine.health_report()
        assert set(report["slo"]) == {"interactive", "batch"}
        assert report["slo"]["interactive"]["availability"]["attainment"] == 1.0

    def test_queue_depth_by_tenant_in_snapshot(self, repo):
        gateway, _ = build_gateway(repo)
        # Fill the slots, then queue more so depth is visible.
        for seed in range(6):
            gateway.submit("key-interactive", lm_request(seed=40 + seed,
                                                         max_new_tokens=4))
        snapshot = gateway.engine.lm_scheduler.resource_snapshot()
        assert "queue_depth_by_tenant" in snapshot
        assert "queue_depth_by_class" in snapshot
        assert "queue_depth_by_priority" in snapshot
        if snapshot["queue_depth"]:
            assert snapshot["queue_depth_by_tenant"].get("interactive")
        gateway.run_until_idle()


class TestStepAndFailures:
    def test_step_returns_settled_envelopes(self, repo):
        gateway, _ = build_gateway(repo)
        request = lm_request(seed=50)
        gateway.submit("key-batch", request)
        settled = []
        for _ in range(100):
            settled += gateway.step(force=True)
            if settled:
                break
        assert settled[0].request_id == request.request_id
        assert settled[0].status == 200

    def test_failure_settles_as_500_and_releases_quota(self, repo):
        gateway, _ = build_gateway(repo)
        bad = InferenceRequest(
            "no-such-model", WorkloadFamily.LM,
            np.arange(4), max_new_tokens=1,
        )
        assert gateway.submit("key-batch", bad).status == 202
        assert gateway.inflight("batch") == 1
        for _ in range(100):
            gateway.step(force=True)
            if gateway.poll(bad.request_id).status != 202:
                break
        final = gateway.poll(bad.request_id)
        assert final.status == 500
        assert gateway.inflight("batch") == 0


class TestAsyncHelper:
    def test_infer_async_charges_and_releases(self, repo):
        import asyncio

        from repro.serve.aio import AsyncServer

        async def scenario():
            clock = FakeClock()
            config = GatewayConfig(tenants=tenants())
            engine = ServingEngine(
                repo,
                clock=clock,
                kv_cache_config=KVCacheConfig(bits=4, page_size=8),
                num_slots=4,
                admission=config.admission_policy(),
                health=config.health_config(),
            )
            gateway = Gateway(engine, config)
            async with AsyncServer(engine=engine) as server:
                result = await gateway.infer_async(
                    server, "key-interactive", lm_request(seed=60)
                )
                assert result.output["finish_reason"] == "length"
                assert gateway.inflight("interactive") == 0
                with pytest.raises(AuthenticationError):
                    await gateway.infer_async(server, "bad", lm_request(seed=61))

        asyncio.run(scenario())


class TestEnvelopeTypes:
    def test_error_envelope_dict_shape(self):
        envelope = ResponseEnvelope(
            status=429,
            request_id="r1",
            tenant="t",
            error=ErrorEnvelope(code="RateLimitedError", message="slow down",
                                retryable=True),
        )
        payload = envelope.as_dict()
        assert payload["error"] == {
            "code": "RateLimitedError",
            "message": "slow down",
            "retryable": True,
        }
        assert not envelope.ok


class TestClockJumpResilience:
    """A fault-injected clock jump must not mint unlimited rate tokens.

    Two halves to the bug this pins: the bucket refill clamps to ``burst``
    (a jump mints at most one burst, never an unbounded backlog), and the
    gateway reads the clock *through the scheduler* — ``FaultInjector``
    rebinds ``scheduler.clock``, so a statically captured engine clock
    would silently keep pre-jump time and split the accounting.
    """

    def test_gateway_tracks_fault_injected_clock(self, repo):
        from repro.serve.faultinject import (
            FaultInjector,
            FaultSchedule,
            FaultSpec,
        )

        gateway, clock = build_gateway(repo)
        scheduler = gateway.engine.lm_scheduler
        schedule = FaultSchedule(
            (FaultSpec("clock_jump", phase="round", at_count=1, jump_s=3600.0),)
        )
        FaultInjector(schedule).attach(scheduler)
        # The gateway must read time through the scheduler's (re-bound)
        # clock, not a reference captured at construction.
        assert gateway.clock() == scheduler.clock()
        # Drain the burst (2), confirm the limiter bites pre-jump.
        assert gateway.submit("key-interactive", lm_request(seed=1)).status == 202
        assert gateway.submit("key-interactive", lm_request(seed=2)).status == 202
        assert gateway.submit("key-interactive", lm_request(seed=3)).status == 429
        # Drain the accepted work; the first decode round fires the jump.
        gateway.engine.run_until_idle()
        assert scheduler.clock() == clock() + 3600.0
        assert gateway.clock() == scheduler.clock()
        # One hour "passed" at 2 rps — but the refill clamps to burst, so
        # exactly the burst is admitted and the limiter still bites.
        assert gateway.submit("key-interactive", lm_request(seed=4)).status == 202
        assert gateway.submit("key-interactive", lm_request(seed=5)).status == 202
        sixth = gateway.submit("key-interactive", lm_request(seed=6))
        assert sixth.status == 429
        assert sixth.error.code == "RateLimitedError"

    def test_token_bucket_clamps_jump_and_survives_backwards_clock(self):
        from repro.serve.gateway import _TokenBucket

        bucket = _TokenBucket(rate=2.0, burst=2)
        assert bucket.try_take(0.0) and bucket.try_take(0.0)
        assert not bucket.try_take(0.0)
        # A huge forward jump mints at most one burst of tokens.
        assert bucket.try_take(1e6) and bucket.try_take(1e6)
        assert not bucket.try_take(1e6)
        # A backwards step re-anchors without refilling (elapsed time is
        # unknowable) and never raises or goes negative.
        assert not bucket.try_take(1e6 - 50.0)
        # Time moving forward from the re-anchor refills normally.
        assert bucket.try_take(1e6 - 49.0)
