"""Inference-engine and synchronous scheduler tests for all three families."""

import numpy as np
import pytest

from repro.serve.batcher import QueuedRequest
from repro.serve.engine import InferenceEngine, ServingEngine
from repro.serve.repository import ModelRepository
from repro.serve.requests import InferenceRequest, ServingError, WorkloadFamily


@pytest.fixture(scope="module")
def repo():
    return ModelRepository(bits=4, seed=0)


@pytest.fixture(scope="module")
def engine(repo):
    return InferenceEngine(repo)


def make_requests(n, model, family, seq_len=16, seed=0, **kwargs):
    rng = np.random.default_rng(seed)
    return [
        InferenceRequest(model, family, rng.integers(0, 96, size=seq_len), **kwargs)
        for _ in range(n)
    ]


def queued(requests):
    return [QueuedRequest(request=r, enqueued_at=0.0) for r in requests]


class TestFamilies:
    def test_classify_outputs(self, engine):
        requests = make_requests(3, "bert-base", WorkloadFamily.CLASSIFY, num_classes=3)
        results, record = engine.run_batch(queued(requests))
        assert len(results) == 3
        for result in results:
            assert 0 <= result.output["label"] < 3
            assert len(result.output["probs"]) == 3
            assert sum(result.output["probs"]) == pytest.approx(1.0)
        assert record.batch_size == 3
        assert record.tokens == 3 * 16

    def test_regression_outputs_score(self, engine):
        requests = make_requests(2, "bert-base", WorkloadFamily.CLASSIFY, num_classes=1)
        results, _ = engine.run_batch(queued(requests))
        for result in results:
            assert isinstance(result.output["score"], float)

    def test_span_outputs(self, engine):
        requests = make_requests(3, "bert-base", WorkloadFamily.SPAN, seq_len=24)
        results, _ = engine.run_batch(queued(requests))
        for result in results:
            assert 0 <= result.output["start"] <= result.output["end"] < 24

    def test_lm_outputs(self, engine):
        requests = make_requests(2, "gpt2-xl", WorkloadFamily.LM, top_k=5)
        results, _ = engine.run_batch(queued(requests))
        for result in results:
            assert len(result.output["next_tokens"]) == 5
            log_probs = result.output["log_probs"]
            assert all(b <= a for a, b in zip(log_probs, log_probs[1:]))

    def test_num_classes_does_not_fragment_lm_batches(self):
        rng = np.random.default_rng(12)
        tokens = rng.integers(0, 96, size=16)
        a = InferenceRequest("gpt2-xl", WorkloadFamily.LM, tokens, num_classes=2)
        b = InferenceRequest("gpt2-xl", WorkloadFamily.LM, tokens, num_classes=5)
        assert a.batch_key == b.batch_key
        # ...while classifiers with different heads stay separate.
        c = InferenceRequest("bert-base", WorkloadFamily.CLASSIFY, tokens, num_classes=2)
        d = InferenceRequest("bert-base", WorkloadFamily.CLASSIFY, tokens, num_classes=5)
        assert c.batch_key != d.batch_key

    def test_lm_top_k_is_per_request_within_a_batch(self, engine):
        """Different top_k values batch together and each gets its own k."""
        rng = np.random.default_rng(9)
        tokens = rng.integers(0, 96, size=16)
        requests = [
            InferenceRequest("gpt2-xl", WorkloadFamily.LM, tokens, top_k=k)
            for k in (1, 5, 3)
        ]
        assert len({r.batch_key for r in requests}) == 1  # still one batch
        results, record = engine.run_batch(queued(requests))
        assert record.batch_size == 3
        assert [len(r.output["next_tokens"]) for r in results] == [1, 5, 3]
        # Same input row: the top-1 candidate must agree across k values.
        assert results[0].output["next_tokens"][0] == results[1].output["next_tokens"][0]

    def test_batched_equals_unbatched(self, engine):
        """Batch membership must not change any request's answer."""
        requests = make_requests(4, "bert-base", WorkloadFamily.CLASSIFY, seed=3)
        batched, _ = engine.run_batch(queued(requests))
        for request, batched_result in zip(requests, batched):
            solo, _ = engine.run_batch(queued([request]))
            assert solo[0].output["label"] == batched_result.output["label"]
            np.testing.assert_allclose(
                solo[0].output["probs"], batched_result.output["probs"], atol=1e-9
            )

    def test_empty_batch_rejected(self, engine):
        with pytest.raises(ServingError):
            engine.run_batch([])

    def test_mixed_batch_rejected(self, engine):
        mixed = queued(
            make_requests(1, "bert-base", WorkloadFamily.CLASSIFY)
            + make_requests(1, "bert-base", WorkloadFamily.SPAN)
        )
        with pytest.raises(ServingError):
            engine.run_batch(mixed)

    def test_traffic_accounting_positive(self, engine):
        requests = make_requests(2, "bert-base", WorkloadFamily.CLASSIFY)
        _, record = engine.run_batch(queued(requests))
        assert record.weight_stream_bytes > 0
        assert record.dram_bytes > record.weight_stream_bytes


class TestServingEngine:
    def test_serve_returns_results_in_request_order(self):
        serving = ServingEngine(max_batch_size=4, max_wait=0.0)
        requests = make_requests(6, "bert-base", WorkloadFamily.CLASSIFY, seed=1)
        results = serving.serve(requests)
        assert [r.request_id for r in results] == [r.request_id for r in requests]
        assert {r.batch_size for r in results} == {4, 2}

    def test_mixed_workloads_served_together(self):
        serving = ServingEngine(max_batch_size=4, max_wait=0.0)
        requests = (
            make_requests(3, "bert-base", WorkloadFamily.CLASSIFY, seed=2)
            + make_requests(3, "bert-base", WorkloadFamily.SPAN, seed=3)
            + make_requests(3, "gpt2-xl", WorkloadFamily.LM, seed=4)
        )
        results = serving.serve(requests)
        assert [r.family for r in results] == [r.family for r in requests]
        summary = serving.stats.summary()
        assert summary.requests == 9
        assert summary.batches == 3
        assert summary.throughput_rps > 0
        assert summary.latency_p95_ms >= summary.latency_p50_ms > 0

    def test_step_without_ready_batch_is_noop(self):
        serving = ServingEngine(max_batch_size=4, max_wait=10.0)
        assert serving.step() == []
        serving.submit(make_requests(1, "bert-base", WorkloadFamily.CLASSIFY)[0])
        assert serving.step() == []          # still inside the wait window
        assert len(serving.step(force=True)) == 1

    def test_result_is_fetch_once(self):
        serving = ServingEngine(max_batch_size=2, max_wait=0.0)
        request = make_requests(1, "bert-base", WorkloadFamily.CLASSIFY)[0]
        serving.submit(request)
        serving.run_until_idle()
        assert serving.result(request.request_id).request_id == request.request_id
        with pytest.raises(ServingError):
            serving.result(request.request_id)

    def test_failed_batch_marks_requests_not_scheduler(self):
        """An unknown model fails its own requests; the engine keeps serving."""
        serving = ServingEngine(max_batch_size=4, max_wait=0.0)
        bad = make_requests(1, "bert-huge", WorkloadFamily.CLASSIFY)[0]
        serving.submit(bad)
        assert serving.step(force=True) == []
        with pytest.raises(ServingError):
            serving.result(bad.request_id)
        good = serving.serve(make_requests(2, "bert-base", WorkloadFamily.CLASSIFY))
        assert len(good) == 2

    def test_take_failures_pops(self):
        serving = ServingEngine(max_batch_size=4, max_wait=0.0)
        bad = make_requests(1, "bert-huge", WorkloadFamily.CLASSIFY)[0]
        serving.submit(bad)
        serving.run_until_idle()
        failures = serving.take_failures()
        assert [rid for rid, _ in failures] == [bad.request_id]
        assert serving.take_failures() == []

    def test_result_registry_is_bounded(self):
        """Sync loops that consume step() returns must not leak results."""
        serving = ServingEngine(max_batch_size=4, max_wait=0.0, result_buffer=4)
        requests = make_requests(12, "bert-base", WorkloadFamily.CLASSIFY, seed=7)
        for request in requests:
            serving.submit(request)
        returned = serving.run_until_idle()
        assert len(returned) == 12
        assert len(serving._completed) == 4  # oldest evicted, bound respected

    def test_serve_handles_more_requests_than_result_buffer(self):
        serving = ServingEngine(max_batch_size=4, max_wait=0.0, result_buffer=2)
        requests = make_requests(10, "bert-base", WorkloadFamily.CLASSIFY, seed=8)
        results = serving.serve(requests)
        assert [r.request_id for r in results] == [r.request_id for r in requests]
        assert len(serving._completed) == 0  # serve() drains its own results

    def test_warm_prebuilds_model(self):
        serving = ServingEngine()
        serving.warm("bert-base", WorkloadFamily.CLASSIFY)
        assert serving.repository.stats.misses == 1
        serving.serve(make_requests(2, "bert-base", WorkloadFamily.CLASSIFY))
        assert serving.repository.stats.misses == 1  # served from cache
