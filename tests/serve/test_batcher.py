"""Micro-batcher tests with an injected fake clock."""

import numpy as np
import pytest

from repro.serve.batcher import MicroBatcher
from repro.serve.requests import InferenceRequest, ServingError, WorkloadFamily


class FakeClock:
    def __init__(self):
        self.now = 0.0

    def __call__(self):
        return self.now

    def advance(self, dt):
        self.now += dt


def make_request(model="bert-base", family=WorkloadFamily.CLASSIFY, seq_len=16, seed=0):
    tokens = np.random.default_rng(seed).integers(0, 96, size=seq_len)
    return InferenceRequest(model, family, tokens)


@pytest.fixture
def clock():
    return FakeClock()


@pytest.fixture
def batcher(clock):
    return MicroBatcher(max_batch_size=4, max_wait=0.010, clock=clock)


class TestReadiness:
    def test_empty_queue_yields_no_batch(self, batcher):
        assert batcher.next_batch() is None

    def test_full_batch_released_immediately(self, batcher):
        for i in range(4):
            batcher.submit(make_request(seed=i))
        batch = batcher.next_batch()
        assert batch is not None and len(batch) == 4
        assert len(batcher) == 0

    def test_partial_batch_waits_for_max_wait(self, batcher, clock):
        batcher.submit(make_request())
        assert batcher.next_batch() is None
        clock.advance(0.005)
        assert batcher.next_batch() is None
        clock.advance(0.006)  # 11 ms total > max_wait
        batch = batcher.next_batch()
        assert batch is not None and len(batch) == 1

    def test_force_releases_partial_batch(self, batcher):
        batcher.submit(make_request())
        batch = batcher.next_batch(force=True)
        assert batch is not None and len(batch) == 1

    def test_oversized_group_split_across_batches(self, batcher):
        for i in range(7):
            batcher.submit(make_request(seed=i))
        assert len(batcher.next_batch()) == 4
        # The remaining three are below max size and must wait again.
        assert batcher.next_batch() is None
        assert len(batcher.next_batch(force=True)) == 3


class TestGrouping:
    def test_incompatible_requests_never_mix(self, batcher, clock):
        batcher.submit(make_request(model="bert-base"))
        batcher.submit(make_request(model="bert-large"))
        batcher.submit(make_request(model="bert-base", family=WorkloadFamily.SPAN))
        batcher.submit(make_request(model="bert-base", seq_len=8))
        assert batcher.num_groups == 4
        clock.advance(1.0)
        seen = []
        while True:
            batch = batcher.next_batch()
            if batch is None:
                break
            keys = {q.request.batch_key for q in batch}
            assert len(keys) == 1
            seen.append(batch)
        assert len(seen) == 4

    def test_oldest_group_served_first(self, batcher, clock):
        batcher.submit(make_request(model="bert-base"))
        clock.advance(0.002)
        batcher.submit(make_request(model="bert-large"))
        clock.advance(0.020)
        first = batcher.next_batch()
        assert first[0].request.model == "bert-base"

    def test_fifo_within_group(self, batcher, clock):
        ids = [batcher.submit(make_request(seed=i)).request.request_id for i in range(4)]
        batch = batcher.next_batch()
        assert [q.request.request_id for q in batch] == ids


class TestNextWait:
    def test_none_when_empty(self, batcher):
        assert batcher.next_wait() is None

    def test_zero_when_full_batch_ready(self, batcher):
        for i in range(4):
            batcher.submit(make_request(seed=i))
        assert batcher.next_wait() == 0.0

    def test_remaining_window_for_partial_batch(self, batcher, clock):
        batcher.submit(make_request())
        clock.advance(0.004)
        assert batcher.next_wait() == pytest.approx(0.006)
        clock.advance(0.007)
        assert batcher.next_wait() == 0.0

    def test_drain_empties_everything(self, batcher):
        for i in range(3):
            batcher.submit(make_request(seed=i))
        batcher.submit(make_request(model="bert-large"))
        batches = batcher.drain()
        assert sum(len(b) for b in batches) == 4
        assert len(batcher) == 0


class TestValidation:
    def test_bad_parameters_rejected(self, clock):
        with pytest.raises(ServingError):
            MicroBatcher(max_batch_size=0, clock=clock)
        with pytest.raises(ServingError):
            MicroBatcher(max_wait=-1.0, clock=clock)

    def test_bad_request_rejected(self):
        with pytest.raises(ServingError):
            InferenceRequest("bert-base", "draw-a-picture", np.arange(4))
        with pytest.raises(ServingError):
            InferenceRequest("bert-base", WorkloadFamily.CLASSIFY, np.array([]))
