"""asyncio front-end tests: concurrent clients coalesce into micro-batches."""

import asyncio

import numpy as np
import pytest

from repro.serve.aio import AsyncServer
from repro.serve.engine import ServingEngine
from repro.serve.repository import ModelRepository
from repro.serve.requests import InferenceRequest, ServingError, WorkloadFamily


@pytest.fixture(scope="module")
def repo():
    repo = ModelRepository(bits=4, seed=0)
    repo.get("bert-base", WorkloadFamily.CLASSIFY)
    repo.get("gpt2-xl", WorkloadFamily.LM)
    return repo


def make_requests(n, model, family, seed=0):
    rng = np.random.default_rng(seed)
    return [
        InferenceRequest(model, family, rng.integers(0, 96, size=16)) for _ in range(n)
    ]


class TestAsyncServer:
    def test_concurrent_clients_share_batches(self, repo):
        async def main():
            engine = ServingEngine(repository=repo, max_batch_size=4, max_wait=0.002)
            async with AsyncServer(engine) as server:
                requests = make_requests(8, "bert-base", WorkloadFamily.CLASSIFY)
                results = await asyncio.gather(*(server.infer(r) for r in requests))
            return engine, results

        engine, results = asyncio.run(main())
        assert len(results) == 8
        # Concurrent submissions coalesced: every batch carried max size.
        assert all(r.batch_size == 4 for r in results)
        assert engine.stats.summary().batches == 2

    def test_mixed_families_resolve_to_correct_clients(self, repo):
        async def main():
            engine = ServingEngine(repository=repo, max_batch_size=4, max_wait=0.002)
            async with AsyncServer(engine) as server:
                classify = make_requests(3, "bert-base", WorkloadFamily.CLASSIFY, seed=1)
                lm = make_requests(3, "gpt2-xl", WorkloadFamily.LM, seed=2)
                interleaved = [r for pair in zip(classify, lm) for r in pair]
                results = await asyncio.gather(*(server.infer(r) for r in interleaved))
            return interleaved, results

        requests, results = asyncio.run(main())
        for request, result in zip(requests, results):
            assert result.request_id == request.request_id
            assert result.family == request.family
            if request.family == WorkloadFamily.CLASSIFY:
                assert "label" in result.output
            else:
                assert "next_tokens" in result.output

    def test_sequential_requests_still_complete(self, repo):
        async def main():
            engine = ServingEngine(repository=repo, max_batch_size=4, max_wait=0.001)
            async with AsyncServer(engine) as server:
                first = await server.infer(
                    make_requests(1, "bert-base", WorkloadFamily.CLASSIFY, seed=3)[0]
                )
                second = await server.infer(
                    make_requests(1, "bert-base", WorkloadFamily.CLASSIFY, seed=4)[0]
                )
            return first, second

        first, second = asyncio.run(main())
        assert first.batch_size == 1
        assert second.batch_size == 1

    def test_infer_before_start_rejected(self, repo):
        async def main():
            server = AsyncServer(ServingEngine(repository=repo))
            request = make_requests(1, "bert-base", WorkloadFamily.CLASSIFY)[0]
            with pytest.raises(ServingError):
                await server.infer(request)

        asyncio.run(main())

    def test_failed_request_rejects_future_without_killing_scheduler(self, repo):
        async def main():
            engine = ServingEngine(repository=repo, max_batch_size=4, max_wait=0.001)
            async with AsyncServer(engine) as server:
                bad = InferenceRequest(
                    "bert-huge", WorkloadFamily.CLASSIFY, np.arange(8)
                )
                with pytest.raises(ServingError):
                    await server.infer(bad)
                # Scheduler must survive the failed batch and keep serving.
                good = await server.infer(
                    make_requests(1, "bert-base", WorkloadFamily.CLASSIFY, seed=6)[0]
                )
            return good

        good = asyncio.run(main())
        assert "label" in good.output

    def test_duplicate_request_id_rejected_up_front(self, repo):
        """A reused in-flight request id must error, not hang the scheduler."""

        async def main():
            engine = ServingEngine(repository=repo, max_batch_size=4, max_wait=0.005)
            async with AsyncServer(engine) as server:
                first, second = make_requests(2, "bert-base", WorkloadFamily.CLASSIFY, seed=7)
                second.request_id = first.request_id
                task = asyncio.ensure_future(server.infer(first))
                await asyncio.sleep(0)
                with pytest.raises(ServingError):
                    await server.infer(second)
                result = await task  # the original request still completes
            return result

        result = asyncio.run(main())
        assert "label" in result.output

    def test_stop_drains_in_flight_requests(self, repo):
        async def main():
            engine = ServingEngine(repository=repo, max_batch_size=8, max_wait=5.0)
            server = await AsyncServer(engine).start()
            requests = make_requests(3, "bert-base", WorkloadFamily.CLASSIFY, seed=5)
            tasks = [asyncio.ensure_future(server.infer(r)) for r in requests]
            await asyncio.sleep(0)  # let submissions land in the batcher
            await server.stop()     # must not strand the un-batched requests
            return await asyncio.gather(*tasks)

        results = asyncio.run(main())
        assert len(results) == 3
        assert all(r.output["probs"] for r in results)
