"""Generation-API tests: SamplingParams, processor chain, streaming, cancel."""

import asyncio

import numpy as np
import pytest

from repro.serve import (
    AsyncServer,
    FinishReason,
    KVCacheConfig,
    ModelRepository,
    RequestOutput,
    Sampler,
    SamplingParams,
    ServingEngine,
    TemperatureWarper,
    TopKFilter,
    TopPFilter,
    default_processors,
    top_k_candidates,
)
from repro.serve.kvcache import cache_for_model
from repro.serve.requests import InferenceRequest, ServingError, WorkloadFamily
from repro.serve.scheduler import ContinuousBatchingScheduler, greedy_top_k


@pytest.fixture(scope="module")
def repo():
    repository = ModelRepository(bits=4, seed=0)
    repository.get("gpt2-xl", WorkloadFamily.LM)  # warm once for the module
    return repository


def gen_request(seq_len=8, max_new_tokens=4, seed=0, model="gpt2-xl", **kwargs):
    rng = np.random.default_rng(seed)
    return InferenceRequest(
        model,
        WorkloadFamily.LM,
        rng.integers(0, 96, size=seq_len),
        max_new_tokens=max_new_tokens,
        **kwargs,
    )


def sampled_request(params, seq_len=8, seed=0, model="gpt2-xl"):
    rng = np.random.default_rng(seed)
    return InferenceRequest(
        model, WorkloadFamily.LM, rng.integers(0, 96, size=seq_len), sampling=params
    )


class TestSamplingParams:
    def test_defaults_are_greedy(self):
        params = SamplingParams()
        assert params.greedy
        assert params.stop_token_ids == ()

    @pytest.mark.parametrize(
        "kwargs",
        [
            {"temperature": -0.1},
            {"top_k": -1},
            {"top_p": 0.0},
            {"top_p": 1.5},
            {"max_new_tokens": -1},
            {"logprobs": -2},
        ],
    )
    def test_validation(self, kwargs):
        with pytest.raises(ServingError):
            SamplingParams(**kwargs)

    def test_frozen(self):
        params = SamplingParams()
        with pytest.raises(AttributeError):
            params.temperature = 1.0

    def test_stop_token_ids_normalized(self):
        params = SamplingParams(stop_token_ids=[np.int64(3), 7])
        assert params.stop_token_ids == (3, 7)


class TestLegacyShim:
    def test_legacy_kwargs_map_into_sampling(self):
        request = gen_request(max_new_tokens=3, top_k=5)
        assert request.sampling.max_new_tokens == 3
        # Legacy top_k names the final-position report only — it must not
        # buy per-streamed-token logprob work the old decoder never did.
        assert request.sampling.logprobs == 0
        assert request.sampling.greedy
        assert request.top_k == 5 and request.max_new_tokens == 3

    def test_sampling_params_mirror_legacy_fields(self):
        params = SamplingParams(temperature=0.7, max_new_tokens=6, logprobs=2, seed=1)
        request = sampled_request(params)
        assert request.max_new_tokens == 6
        assert request.top_k == 2
        assert request.sampling is params

    def test_conflicting_kwargs_rejected(self):
        with pytest.raises(ServingError, match="not both"):
            gen_request(max_new_tokens=3, sampling=SamplingParams(max_new_tokens=5))
        with pytest.raises(ServingError, match="not both"):
            gen_request(
                max_new_tokens=0, top_k=7, sampling=SamplingParams(max_new_tokens=2)
            )

    def test_legacy_validation_preserved(self):
        with pytest.raises(ServingError):
            gen_request(max_new_tokens=-1)
        with pytest.raises(ServingError):
            gen_request(top_k=0)


class TestDeterministicTopK:
    def test_all_equal_breaks_ties_by_token_id(self):
        top = top_k_candidates(np.zeros(16), 3)
        assert top.tolist() == [0, 1, 2]

    def test_boundary_ties_are_deterministic(self):
        log_probs = np.array([0.5, 1.0, 0.5, 2.0, 0.5, 1.0])
        top = top_k_candidates(log_probs, 4)
        # Descending value; ascending token id among equals (1 before 5,
        # and of the three 0.5 ties only the lowest id survives).
        assert top.tolist() == [3, 1, 5, 0]

    def test_greedy_top_k_wrapper(self):
        log_probs = np.array([0.1, 0.9, 0.9, 0.2])
        out = greedy_top_k(log_probs, 3)
        assert out["next_tokens"] == [1, 2, 3]
        assert out["log_probs"] == [0.9, 0.9, pytest.approx(0.2)]
        with pytest.raises(ServingError):
            greedy_top_k(log_probs, 0)

    def test_first_candidate_matches_argmax(self):
        rng = np.random.default_rng(2)
        for _ in range(10):
            log_probs = rng.normal(size=50)
            assert top_k_candidates(log_probs, 5)[0] == int(np.argmax(log_probs))


class TestProcessorChain:
    def test_default_chain_composition(self):
        assert default_processors(SamplingParams()) == ()
        chain = default_processors(
            SamplingParams(temperature=0.5, top_k=10, top_p=0.9)
        )
        assert [type(p) for p in chain] == [TemperatureWarper, TopKFilter, TopPFilter]

    def test_top_k_filter_keeps_boundary_ties(self):
        filtered = TopKFilter(2)(np.array([1.0, 3.0, 1.0, 2.0, 2.0]))
        # k-th largest is 2.0; both 2.0 ties survive, both 1.0s are masked.
        assert np.isneginf(filtered[[0, 2]]).all()
        assert filtered[[1, 3, 4]].tolist() == [3.0, 2.0, 2.0]

    def test_top_p_keeps_minimal_nucleus(self):
        log_probs = np.log(np.array([0.6, 0.3, 0.08, 0.02]))
        filtered = TopPFilter(0.7)(log_probs)
        # 0.6 < 0.7 so the second token is still needed; the tail is cut.
        assert np.isfinite(filtered[[0, 1]]).all()
        assert np.isneginf(filtered[[2, 3]]).all()

    def test_temperature_zero_bypasses_chain(self):
        class Exploding(TopKFilter):
            def __call__(self, log_probs):
                raise AssertionError("chain must not run on the greedy path")

        sampler = Sampler(SamplingParams(), processors=[Exploding(1)])
        log_probs = np.array([0.1, 0.9, 0.3])
        sampled = sampler.sample(log_probs)
        assert sampled.token_id == 1
        assert sampled.logprob == pytest.approx(0.9)

    def test_seeded_sampling_reproducible(self):
        params = SamplingParams(temperature=0.8, top_k=20, seed=7)
        log_probs = np.random.default_rng(0).normal(size=64)
        sampler = Sampler(params)
        draws_a = [
            sampler.sample(log_probs, sampler.make_generator()).token_id
            for _ in range(5)
        ]
        draws_b = [
            sampler.sample(log_probs, sampler.make_generator()).token_id
            for _ in range(5)
        ]
        assert draws_a == draws_b

    def test_reported_logprob_is_unwarped(self):
        params = SamplingParams(temperature=0.25, seed=3, logprobs=2)
        log_probs = np.log(np.array([0.7, 0.2, 0.1]))
        sampled = Sampler(params).sample(log_probs, np.random.default_rng(3))
        assert sampled.logprob == pytest.approx(float(log_probs[sampled.token_id]))
        assert sampled.top_logprobs[0] == (0, pytest.approx(float(log_probs[0])))


class TestGreedyEquivalence:
    @pytest.mark.parametrize("quantize", [True, False], ids=["packed", "fp32"])
    def test_temperature_zero_matches_manual_argmax_decode(self, repo, quantize):
        """SamplingParams(temperature=0) must be token-for-token the
        pre-redesign greedy path on fp32 and packed KV configs."""
        config = KVCacheConfig(bits=4, page_size=4, quantize=quantize)
        prompt = np.random.default_rng(50).integers(0, 96, size=10)
        max_new = 5
        # Hand-rolled pre-redesign greedy loop straight on the model.
        entry = repo.get("gpt2-xl", WorkloadFamily.LM)
        cache = cache_for_model(entry.model, config)
        lp = entry.model.log_probs_incremental(
            prompt[None, :], [cache], last_only=True
        )[:, -1, :]
        expected = [int(np.argmax(lp[0]))]
        for _ in range(max_new - 1):
            lp = entry.model.log_probs_incremental(
                np.array([[expected[-1]]]), [cache]
            )[:, -1, :]
            expected.append(int(np.argmax(lp[0])))
        cache.release()

        scheduler = ContinuousBatchingScheduler(repo, num_slots=2, cache_config=config)
        scheduler.submit(
            InferenceRequest(
                "gpt2-xl",
                WorkloadFamily.LM,
                prompt,
                sampling=SamplingParams(temperature=0, max_new_tokens=max_new),
            )
        )
        result = scheduler.run_until_idle()[0]
        assert result.output.token_ids == expected
        assert result.output.finish_reason == FinishReason.LENGTH
        assert result.output["generated_tokens"] == expected  # legacy view

    def test_seeded_sampling_continuous_matches_whole_batch(self, repo):
        params = SamplingParams(temperature=0.9, top_k=30, seed=11, max_new_tokens=6)
        outputs = {}
        for continuous in (True, False):
            engine = ServingEngine(
                repository=repo,
                max_batch_size=2,
                max_wait=0.0,
                continuous_batching=continuous,
            )
            result = engine.serve([sampled_request(params, seed=4)])[0]
            outputs[continuous] = result.output.token_ids
        assert outputs[True] == outputs[False]
        assert len(outputs[True]) == 6

    def test_sampled_run_is_reproducible_per_seed(self, repo):
        params = SamplingParams(temperature=1.2, top_p=0.95, seed=21, max_new_tokens=5)
        runs = []
        for _ in range(2):
            engine = ServingEngine(repository=repo, max_batch_size=2, max_wait=0.0)
            runs.append(engine.serve([sampled_request(params, seed=5)])[0].output.token_ids)
        assert runs[0] == runs[1]


class TestStopTokens:
    def test_stop_token_finishes_mid_round(self, repo):
        # Learn the greedy stream first, then stop on its second token.
        probe = ServingEngine(repository=repo, max_batch_size=2, max_wait=0.0)
        free_run = probe.serve([gen_request(max_new_tokens=6, seed=6)])[0]
        tokens = free_run.output.token_ids
        assert free_run.output.finish_reason == FinishReason.LENGTH

        engine = ServingEngine(repository=repo, max_batch_size=2, max_wait=0.0)
        stopped = engine.serve(
            [
                sampled_request(
                    SamplingParams(
                        max_new_tokens=6, stop_token_ids=(tokens[1],)
                    ),
                    seed=6,
                )
            ]
        )[0]
        assert stopped.output.finish_reason == FinishReason.STOP
        # The stream ends at the first occurrence of the stop token (the
        # greedy stream may repeat tokens, so locate it rather than assume).
        first_stop = tokens.index(tokens[1])
        assert stopped.output.token_ids == tokens[: first_stop + 1]
        summary = engine.stats.summary()
        assert summary.finish_stop == 1
        assert summary.finish_reasons["stop"] == 1

    def test_stop_token_in_whole_batch_mode(self, repo):
        probe = ServingEngine(
            repository=repo, max_batch_size=2, max_wait=0.0, continuous_batching=False
        )
        tokens = probe.serve([gen_request(max_new_tokens=4, seed=7)])[0].output.token_ids
        engine = ServingEngine(
            repository=repo, max_batch_size=2, max_wait=0.0, continuous_batching=False
        )
        stopped = engine.serve(
            [
                sampled_request(
                    SamplingParams(max_new_tokens=4, stop_token_ids=(tokens[0],)),
                    seed=7,
                )
            ]
        )[0]
        assert stopped.output.finish_reason == FinishReason.STOP
        assert stopped.output.token_ids == tokens[:1]


class TestStreaming:
    def test_chunks_concatenate_to_generated_tokens(self, repo):
        engine = ServingEngine(repository=repo, max_batch_size=2, max_wait=0.0)
        reference = engine.serve([gen_request(max_new_tokens=5, seed=8)])[0]

        streamer = ServingEngine(repository=repo, max_batch_size=2, max_wait=0.0)
        request = gen_request(max_new_tokens=5, seed=8)
        streamer.submit(request)
        chunks = list(streamer.stream(request.request_id))
        assert [c.token_id for c in chunks] == reference.output.token_ids
        assert [c.index for c in chunks] == list(range(5))
        assert [c.finish_reason for c in chunks[:-1]] == [None] * 4
        assert chunks[-1].finish_reason == FinishReason.LENGTH
        summary = streamer.stats.summary()
        assert summary.ttft_p50_ms >= 0.0
        assert summary.finish_length == 1

    def test_streamed_logprobs_reported(self, repo):
        engine = ServingEngine(repository=repo, max_batch_size=2, max_wait=0.0)
        request = sampled_request(
            SamplingParams(max_new_tokens=3, logprobs=4), seed=9
        )
        engine.submit(request)
        chunks = list(engine.stream(request.request_id))
        for chunk in chunks:
            assert len(chunk.top_logprobs) == 4
            assert chunk.top_logprobs[0][1] >= chunk.top_logprobs[-1][1]
            assert chunk.logprob == pytest.approx(
                dict(chunk.top_logprobs).get(chunk.token_id, chunk.logprob)
            )

    def test_stream_unknown_request_raises(self, repo):
        engine = ServingEngine(repository=repo, max_batch_size=2, max_wait=0.0)
        with pytest.raises(ServingError, match="no streaming request"):
            next(engine.stream("req-does-not-exist"))

    def test_stream_failed_admission_raises(self, repo):
        engine = ServingEngine(repository=repo, max_batch_size=2, max_wait=0.0)
        request = gen_request(max_new_tokens=3, model="no-such-model")
        engine.submit(request)
        with pytest.raises(ServingError, match="failed"):
            list(engine.stream(request.request_id))


class TestCancellation:
    def test_cancel_mid_decode_releases_all_pool_references(self, repo):
        config = KVCacheConfig(bits=4, page_size=4)
        scheduler = ContinuousBatchingScheduler(repo, num_slots=2, cache_config=config)
        pool = scheduler.page_pool
        scheduler.submit(gen_request(seq_len=12, max_new_tokens=32, seed=60))
        scheduler.step()  # admitted and decoding
        assert scheduler.num_active == 1
        result = scheduler.cancel(scheduler._slots[0].request.request_id)
        assert result.output.finish_reason == FinishReason.ABORTED
        assert result.finish_reason == FinishReason.ABORTED
        assert scheduler.num_active == 0
        # Refcounts return to pre-admission values: only prefix-indexed pages
        # survive, each held exactly once (by its index node).
        assert pool.num_entries == pool.num_prefix_nodes * 2 * 3  # K/V × layers
        assert pool.num_shared_pages == 0
        assert scheduler.cancelled == 1

    def test_cancel_frees_slot_for_queued_request_same_step(self, repo):
        scheduler = ContinuousBatchingScheduler(repo, num_slots=1)
        first = gen_request(max_new_tokens=32, seed=61)
        second = gen_request(max_new_tokens=2, seed=62)
        scheduler.submit(first)
        scheduler.submit(second)
        scheduler.step()
        assert scheduler.num_active == 1 and scheduler.num_queued == 1
        scheduler.cancel(first.request_id)
        scheduler.step()  # the freed slot admits the queued request now
        assert scheduler.num_active == 1
        assert scheduler._slots[0].request.request_id == second.request_id

    def test_cancel_never_perturbs_cobatched_sequences(self, repo):
        solo_engine = ServingEngine(repository=repo, max_batch_size=4, max_wait=0.0)
        survivor_solo = solo_engine.serve([gen_request(max_new_tokens=6, seed=63)])[0]

        engine = ServingEngine(repository=repo, max_batch_size=4, max_wait=0.0)
        doomed = gen_request(max_new_tokens=32, seed=64)
        survivor = gen_request(max_new_tokens=6, seed=63)
        engine.submit(doomed)
        engine.submit(survivor)
        engine.step(force=True)
        engine.step(force=True)
        assert engine.cancel(doomed.request_id) is not None
        results = {r.request_id: r for r in engine.run_until_idle()}
        assert (
            results[survivor.request_id].output.token_ids
            == survivor_solo.output.token_ids
        )
        aborted = engine.result(doomed.request_id)
        assert aborted.output.finish_reason == FinishReason.ABORTED
        assert 0 < len(aborted.output.token_ids) < 32
        summary = engine.stats.summary()
        assert summary.finish_aborted == 1

    def test_cancel_queued_request_before_admission(self, repo):
        scheduler = ContinuousBatchingScheduler(repo, num_slots=1)
        scheduler.submit(gen_request(max_new_tokens=8, seed=65))
        waiting = gen_request(max_new_tokens=8, seed=66)
        scheduler.submit(waiting)
        scheduler.step()
        result = scheduler.cancel(waiting.request_id)
        assert result.output.finish_reason == FinishReason.ABORTED
        assert result.output.token_ids == []
        assert scheduler.num_queued == 0

    def test_cancel_unknown_returns_none(self, repo):
        engine = ServingEngine(repository=repo, max_batch_size=2, max_wait=0.0)
        assert engine.cancel("req-unknown") is None

    def test_cancel_terminates_stream(self, repo):
        engine = ServingEngine(repository=repo, max_batch_size=2, max_wait=0.0)
        request = gen_request(max_new_tokens=48, seed=67)
        engine.submit(request)
        stream = engine.stream(request.request_id)
        first = next(stream)
        assert first.is_token
        engine.cancel(request.request_id)
        rest = list(stream)
        assert rest[-1].finish_reason == FinishReason.ABORTED
        assert not rest[-1].is_token

    def test_cancel_micro_batched_request(self, repo):
        engine = ServingEngine(repository=repo, max_batch_size=4, max_wait=10.0)
        request = InferenceRequest("gpt2-xl", WorkloadFamily.LM, np.arange(6))
        engine.submit(request)
        result = engine.cancel(request.request_id)
        assert result.output.finish_reason == FinishReason.ABORTED
        assert engine.pending == 0


class TestGeneratedSuffixSharing:
    def test_follow_up_turn_attaches_generated_pages(self, repo):
        config = KVCacheConfig(bits=4, page_size=4)
        scheduler = ContinuousBatchingScheduler(
            repo, num_slots=2, cache_config=config, share_generated_suffix=True
        )
        prompt = np.random.default_rng(70).integers(0, 96, size=16)
        scheduler.submit(
            InferenceRequest("gpt2-xl", WorkloadFamily.LM, prompt, max_new_tokens=8)
        )
        first = scheduler.run_until_idle()[0]
        generated = first.output.token_ids
        # Follow-up turn: the conversation so far becomes the next prompt.
        follow_up = np.concatenate([prompt, np.asarray(generated, dtype=np.int64)])
        scheduler.submit(
            InferenceRequest("gpt2-xl", WorkloadFamily.LM, follow_up, max_new_tokens=2)
        )
        second = scheduler.run_until_idle()[0]
        # prompt(16) + generated-but-unfed(7) = 23 tokens sealed → 5 pages.
        assert second.output["kv_cache"]["prefix_shared_tokens"] == 20
        assert second.output["kv_cache"]["prefix_shared_tokens"] > prompt.size - 4

    def test_flag_off_registers_prompt_pages_only(self, repo):
        config = KVCacheConfig(bits=4, page_size=4)
        scheduler = ContinuousBatchingScheduler(repo, num_slots=2, cache_config=config)
        prompt = np.random.default_rng(71).integers(0, 96, size=16)
        scheduler.submit(
            InferenceRequest("gpt2-xl", WorkloadFamily.LM, prompt, max_new_tokens=8)
        )
        scheduler.run_until_idle()
        # Only the 4 prompt pages are indexed (per layer pair), none generated.
        assert scheduler.page_pool.num_prefix_nodes == 4

    def test_suffix_registration_keeps_refcounts_balanced(self, repo):
        config = KVCacheConfig(bits=4, page_size=4)
        scheduler = ContinuousBatchingScheduler(
            repo, num_slots=2, cache_config=config, share_generated_suffix=True
        )
        scheduler.submit(gen_request(seq_len=12, max_new_tokens=6, seed=72))
        scheduler.run_until_idle()
        pool = scheduler.page_pool
        # Every surviving page is held exactly once, by its prefix node.
        assert pool.num_prefix_nodes > 3  # prompt pages + generated pages
        assert pool.num_entries == pool.num_prefix_nodes * 2 * 3
        assert pool.num_shared_pages == 0


class TestRequestOutputCompat:
    def test_score_only_output_legacy_view(self, repo):
        engine = ServingEngine(repository=repo, max_batch_size=2, max_wait=0.0)
        result = engine.serve(
            [InferenceRequest("gpt2-xl", WorkloadFamily.LM, np.arange(8), top_k=3)]
        )[0]
        output = result.output
        assert isinstance(output, RequestOutput)
        assert output.finish_reason is None
        assert "next_tokens" in output and "generated_tokens" not in output
        assert len(output["next_tokens"]) == 3
        assert output.get("generated_tokens", "missing") == "missing"

    def test_generation_output_legacy_view(self, repo):
        engine = ServingEngine(repository=repo, max_batch_size=2, max_wait=0.0)
        result = engine.serve([gen_request(max_new_tokens=3, seed=80)])[0]
        output = result.output
        assert output["generated_tokens"] == output.token_ids
        assert output["kv_cache"]["seq_len"] > 0
        assert output["finish_reason"] == FinishReason.LENGTH
        assert sorted(output.keys()) == [
            "finish_reason",
            "generated_tokens",
            "kv_cache",
            "log_probs",
            "next_tokens",
        ]
        assert output.num_generated == 3
        assert len(output.logprobs) == 3
        as_dict = output.as_dict()
        assert as_dict["token_ids"] == output.token_ids

    def test_stats_latency_fields_populated(self, repo):
        engine = ServingEngine(repository=repo, max_batch_size=4, max_wait=0.0)
        engine.serve([gen_request(max_new_tokens=5, seed=81)])
        summary = engine.stats.summary()
        assert summary.finish_length == 1
        assert summary.ttft_p95_ms >= summary.ttft_p50_ms >= 0.0
        assert summary.inter_token_p95_ms >= summary.inter_token_p50_ms > 0.0
        as_dict = summary.as_dict()
        for key in ("ttft_p50_ms", "inter_token_p95_ms", "finish_length"):
            assert key in as_dict


class TestAsyncStreaming:
    def test_async_stream_matches_infer(self, repo):
        async def scenario():
            reference_engine = ServingEngine(
                repository=repo, max_batch_size=2, max_wait=0.0
            )
            async with AsyncServer(reference_engine) as server:
                reference = await server.infer(gen_request(max_new_tokens=4, seed=90))
            engine = ServingEngine(repository=repo, max_batch_size=2, max_wait=0.0)
            async with AsyncServer(engine) as server:
                chunks = []
                async for chunk in server.stream(gen_request(max_new_tokens=4, seed=90)):
                    chunks.append(chunk)
            return reference, chunks

        reference, chunks = asyncio.run(scenario())
        assert [c.token_id for c in chunks] == reference.output.token_ids
        assert chunks[-1].finish_reason == FinishReason.LENGTH

    def test_async_cancel_resolves_infer_future(self, repo):
        async def scenario():
            engine = ServingEngine(repository=repo, max_batch_size=2, max_wait=0.0)
            async with AsyncServer(engine) as server:
                request = gen_request(max_new_tokens=48, seed=91)
                task = asyncio.ensure_future(server.infer(request))
                # Let a couple of decode rounds run before aborting.
                for _ in range(20):
                    await asyncio.sleep(0)
                cancelled = await server.cancel(request.request_id)
                result = await task
                return cancelled, result

        cancelled, result = asyncio.run(scenario())
        assert cancelled is not None
        assert result.output.finish_reason == FinishReason.ABORTED
        assert len(result.output.token_ids) < 48
