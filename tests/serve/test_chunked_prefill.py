"""Chunked prefill: token identity with unchunked, interleaving, lifecycle."""

import numpy as np
import pytest

from repro.serve.engine import ServingEngine
from repro.serve.kvcache import KVCacheConfig
from repro.serve.repository import ModelRepository
from repro.serve.requests import InferenceRequest, ServingError, WorkloadFamily
from repro.serve.scheduler import ContinuousBatchingScheduler
from repro.serve.spec import SpeculativeConfig, SpeculativeDecoder


@pytest.fixture(scope="module")
def repo():
    repository = ModelRepository(bits=4, seed=0)
    repository.get("gpt2-xl", WorkloadFamily.LM)
    return repository


# Full-precision K/V pages (quantize=False): the bit-exact reference mode
# where chunk boundaries need not be page-aligned.
FP32_CACHE = KVCacheConfig(bits=4, page_size=8, quantize=False)


def gen_request(seq_len=8, max_new_tokens=4, seed=0, **kwargs):
    rng = np.random.default_rng(seed)
    return InferenceRequest(
        "gpt2-xl",
        WorkloadFamily.LM,
        rng.integers(0, 96, size=seq_len),
        max_new_tokens=max_new_tokens,
        **kwargs,
    )


def run_to_completion(scheduler, requests, max_steps=500):
    outputs = {}
    for request in requests:
        scheduler.submit(request)
    steps = 0
    while scheduler.num_queued or scheduler.num_active:
        for result in scheduler.step():
            outputs[result.request_id] = list(result.output["generated_tokens"])
        steps += 1
        assert steps < max_steps, "scheduler did not drain"
    return outputs


class TestTokenIdentity:
    """Greedy output must not depend on the prefill chunking."""

    @pytest.mark.parametrize("chunk", [5, 7, 8, 13, 16])
    def test_fp32_any_chunk_size(self, repo, chunk):
        def run(chunk_tokens):
            scheduler = ContinuousBatchingScheduler(
                repo, num_slots=2, cache_config=FP32_CACHE,
                prefill_chunk_tokens=chunk_tokens,
            )
            requests = [gen_request(seq_len=37, max_new_tokens=6, seed=s)
                        for s in range(2)]
            outputs = run_to_completion(scheduler, requests)
            return [outputs[r.request_id] for r in requests]

        assert run(chunk) == run(None)

    @pytest.mark.parametrize("chunk", [8, 16, 24])
    def test_packed_page_aligned_chunks(self, repo, chunk):
        """Quantized caches seal pages; chunk boundaries land on them."""
        config = KVCacheConfig(bits=4, page_size=8)
        prompts = [np.random.default_rng(s).integers(0, 96, size=37)
                   for s in range(2)]

        def run(chunk_tokens):
            scheduler = ContinuousBatchingScheduler(
                repo, num_slots=2, cache_config=config,
                prefill_chunk_tokens=chunk_tokens,
            )
            reqs = [InferenceRequest("gpt2-xl", WorkloadFamily.LM, p,
                                     max_new_tokens=6) for p in prompts]
            out = run_to_completion(scheduler, reqs)
            return [out[r.request_id] for r in reqs]

        assert run(chunk) == run(None)

    def test_cross_page_boundary_prompt(self, repo):
        """A prompt spanning several pages chunks without corrupting K/V."""
        config = KVCacheConfig(bits=4, page_size=4)
        prompt = np.random.default_rng(3).integers(0, 96, size=29)

        def run(chunk_tokens):
            scheduler = ContinuousBatchingScheduler(
                repo, num_slots=1, cache_config=config,
                prefill_chunk_tokens=chunk_tokens,
            )
            request = InferenceRequest("gpt2-xl", WorkloadFamily.LM, prompt,
                                       max_new_tokens=5)
            return run_to_completion(scheduler, [request])[request.request_id]

        assert run(4) == run(None) == run(12)


class TestInterleaving:
    def test_short_request_decodes_during_long_prefill(self, repo):
        """Chunking bounds the prefill work per round, so short requests
        finish while the long document is still absorbing chunks."""
        scheduler = ContinuousBatchingScheduler(
            repo, num_slots=2,
            cache_config=KVCacheConfig(bits=4, page_size=8),
            prefill_chunk_tokens=8,
        )
        long_request = gen_request(seq_len=56, max_new_tokens=2, seed=1)
        short_request = gen_request(seq_len=6, max_new_tokens=2, seed=2)
        scheduler.submit(long_request)
        scheduler.submit(short_request)
        finished_order = []
        steps = 0
        while scheduler.num_queued or scheduler.num_active:
            for result in scheduler.step():
                finished_order.append(result.request_id)
            steps += 1
            assert steps < 100
        assert finished_order[0] == short_request.request_id
        # The 56-token prompt at 8 tokens/round needs ~7 chunk rounds.
        assert steps >= 7

    def test_prefilling_slot_counts_as_active(self, repo):
        scheduler = ContinuousBatchingScheduler(
            repo, num_slots=1,
            cache_config=KVCacheConfig(bits=4, page_size=8),
            prefill_chunk_tokens=8,
        )
        scheduler.submit(gen_request(seq_len=40, max_new_tokens=1))
        scheduler.step()
        assert scheduler.num_active == 1  # mid-prefill, holds its slot


class TestLifecycle:
    def test_cancel_mid_prefill(self, repo):
        scheduler = ContinuousBatchingScheduler(
            repo, num_slots=1,
            cache_config=KVCacheConfig(bits=4, page_size=8),
            prefill_chunk_tokens=8,
        )
        request = gen_request(seq_len=56, max_new_tokens=2)
        scheduler.submit(request)
        scheduler.step()  # first chunk only
        result = scheduler.cancel(request.request_id)
        assert result is not None
        assert result.output["finish_reason"] == "aborted"
        assert result.output["generated_tokens"] == []
        assert scheduler.num_active == 0

    def test_deadline_mid_prefill(self, repo):
        clock = {"t": 0.0}
        scheduler = ContinuousBatchingScheduler(
            repo, num_slots=1, clock=lambda: clock["t"],
            cache_config=KVCacheConfig(bits=4, page_size=8),
            prefill_chunk_tokens=8,
        )
        request = gen_request(seq_len=56, max_new_tokens=2, deadline_s=1.0)
        scheduler.submit(request)
        scheduler.step()
        clock["t"] = 5.0  # expire while still prefilling
        results = scheduler.step()
        expired = [r for r in results if r.request_id == request.request_id]
        assert expired and expired[0].output["finish_reason"] == "deadline"

    def test_validation(self, repo):
        with pytest.raises(ServingError):
            ContinuousBatchingScheduler(repo, num_slots=1,
                                        prefill_chunk_tokens=0)
        with pytest.raises(ServingError):
            # Quantized caches require page-aligned chunks.
            ContinuousBatchingScheduler(
                repo, num_slots=1,
                cache_config=KVCacheConfig(bits=4, page_size=8),
                prefill_chunk_tokens=6,
            )

    def test_engine_threads_chunk_size(self, repo):
        engine = ServingEngine(
            repo, kv_cache_config=KVCacheConfig(bits=4, page_size=8),
            num_slots=2, prefill_chunk_tokens=16,
        )
        assert engine.lm_scheduler.prefill_chunk_tokens == 16
        request = gen_request(seq_len=40, max_new_tokens=2)
        engine.submit(request)
        results = []
        for _ in range(100):
            results += engine.step(force=True)
            if results:
                break
        assert results[0].output["finish_reason"] == "length"


class TestPrefixSharingWithChunks:
    def test_chunked_prefill_registers_full_prefix(self, repo):
        """After a chunked prefill completes, a same-prefix follow-up reuses
        the cached pages instead of re-prefilling."""
        from repro.serve.stats import ServingStats

        config = KVCacheConfig(bits=4, page_size=8, prefix_sharing=True)
        scheduler = ContinuousBatchingScheduler(
            repo, num_slots=2, cache_config=config, prefill_chunk_tokens=8,
            stats=ServingStats(),
        )
        prompt = np.random.default_rng(9).integers(0, 96, size=40)
        first = InferenceRequest("gpt2-xl", WorkloadFamily.LM, prompt,
                                 max_new_tokens=2)
        out_first = run_to_completion(scheduler, [first])[first.request_id]
        follow = InferenceRequest("gpt2-xl", WorkloadFamily.LM, prompt,
                                  max_new_tokens=2)
        out_follow = run_to_completion(scheduler, [follow])[follow.request_id]
        # The follow-up adopted sealed pages instead of re-prefilling.
        assert scheduler.stats.summary().prefix_pages_attached > 0
        assert out_follow == out_first


#: Cheap calibration: the draft heads only need to exist and propose.
SPEC_CONFIG = SpeculativeConfig(
    num_speculative_tokens=2,
    calibration_sequences=6,
    calibration_tokens=12,
    calibration_prompt_len=4,
)


class TestSpeculationDuringChunkedPrefill:
    """A slot mid-chunked-prefill must never join the speculative path.

    Its cache holds only a prompt prefix and it has emitted no token to
    extend, so draft proposals for it would read ``slot.generated[-1]``
    (IndexError pre-guard) and a verify batch would attend a half-built
    prefix.  The guard lives in ``_plan_speculation`` so *every* caller is
    safe, not just the round loop's prefilling-slot filter.
    """

    @pytest.fixture(scope="class")
    def decoder(self, repo):
        config = KVCacheConfig(bits=4, page_size=8, prefix_sharing=False)
        decoder = SpeculativeDecoder(
            repo, SPEC_CONFIG, target_cache_config=config
        )
        decoder.warm("gpt2-xl")
        return decoder

    def test_mid_prefill_slot_gets_no_proposals(self, repo, decoder):
        scheduler = ContinuousBatchingScheduler(
            repo, num_slots=1,
            cache_config=KVCacheConfig(bits=4, page_size=8,
                                       prefix_sharing=False),
            prefill_chunk_tokens=8,
            speculative=decoder,
        )
        scheduler.submit(gen_request(seq_len=56, max_new_tokens=8))
        scheduler.step()  # first chunk only
        slot = next(s for s in scheduler._slots if s is not None)
        assert slot.prefilling and not slot.generated
        # Direct call: the guard must hand back an empty proposal list
        # instead of raising on the slot's empty ``generated`` history.
        assert scheduler._plan_speculation([slot]) == [[]]

    def test_chunked_speculative_token_identity(self, repo, decoder):
        """Chunked prefill × speculation = plain unchunked greedy output."""
        config = KVCacheConfig(bits=4, page_size=8, prefix_sharing=False)
        prompts = [np.random.default_rng(s).integers(0, 96, size=37)
                   for s in (21, 22)]

        def run(chunk_tokens, speculative):
            scheduler = ContinuousBatchingScheduler(
                repo, num_slots=2, cache_config=config,
                prefill_chunk_tokens=chunk_tokens, speculative=speculative,
            )
            reqs = [InferenceRequest("gpt2-xl", WorkloadFamily.LM, p,
                                     max_new_tokens=10) for p in prompts]
            out = run_to_completion(scheduler, reqs)
            return [out[r.request_id] for r in reqs]

        assert run(8, decoder) == run(None, None)
