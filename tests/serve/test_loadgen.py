"""Trace-driven load generation: determinism, replay, multi-turn, reports."""

import json

import pytest

from repro.serve.engine import ServingEngine
from repro.serve.gateway import Gateway, GatewayConfig, TenantConfig
from repro.serve.kvcache import KVCacheConfig
from repro.serve.loadgen import (
    LoadRunner,
    TenantLoad,
    TraceConfig,
    TraceEvent,
    VirtualClock,
    generate_trace,
    load_trace,
    save_trace,
)
from repro.serve.repository import ModelRepository
from repro.serve.requests import ServingError, WorkloadFamily


@pytest.fixture(scope="module")
def repo():
    repository = ModelRepository(bits=4, seed=0)
    repository.get("gpt2-xl", WorkloadFamily.LM)
    return repository


def trace_config(seed=7, rounds=14):
    return TraceConfig(
        tenants=(
            TenantLoad(
                name="interactive",
                arrivals_per_round=0.6,
                burst_rounds=3,
                idle_rounds=3,
                prompt_tokens=(6, 14),
                max_new_tokens=3,
                turns_range=(1, 3),
            ),
            TenantLoad(
                name="batch",
                arrivals_per_round=0.3,
                prompt_tokens=(20, 40),
                max_new_tokens=4,
            ),
        ),
        rounds=rounds,
        seed=seed,
    )


def build_gateway(repo, clock):
    config = GatewayConfig(tenants=(
        TenantConfig(
            name="interactive",
            api_key="key-i",
            priority=10,
            requests_per_second=60.0,
            burst=6,
            max_concurrent=8,
            ttft_target_seconds=0.5,
            latency_target_seconds=2.0,
        ),
        TenantConfig(name="batch", api_key="key-b", max_concurrent=4),
    ))
    engine = ServingEngine(
        repo,
        clock=clock,
        kv_cache_config=KVCacheConfig(bits=4, page_size=8, prefix_sharing=True),
        num_slots=4,
        admission=config.admission_policy(),
        health=config.health_config(),
        prefill_chunk_tokens=8,
    )
    return Gateway(engine, config)


class TestTraceGeneration:
    def test_same_config_same_trace(self):
        assert generate_trace(trace_config()) == generate_trace(trace_config())

    def test_different_seed_different_trace(self):
        assert generate_trace(trace_config(seed=1)) != generate_trace(
            trace_config(seed=2)
        )

    def test_adding_tenant_preserves_existing_streams(self):
        base = trace_config()
        extended = TraceConfig(
            tenants=base.tenants + (
                TenantLoad(name="extra", arrivals_per_round=0.5),
            ),
            rounds=base.rounds,
            seed=base.seed,
        )
        original = [e for e in generate_trace(base)]
        kept = [e for e in generate_trace(extended) if e.tenant != "extra"]
        assert kept == original

    def test_multi_turn_conversations_present(self):
        events = generate_trace(trace_config())
        followups = [e for e in events if e.turn > 0]
        assert followups, "turns_range=(1,3) should yield follow-up turns"
        by_conv = {}
        for event in events:
            by_conv.setdefault(event.conversation, []).append(event.turn)
        for turns in by_conv.values():
            assert sorted(turns) == list(range(len(turns)))

    def test_validation(self):
        with pytest.raises(ServingError):
            TraceConfig(tenants=())
        with pytest.raises(ServingError):
            TenantLoad(name="t", arrivals_per_round=0)
        with pytest.raises(ServingError):
            TenantLoad(name="t", prompt_tokens=(5, 3))
        with pytest.raises(ServingError):
            VirtualClock().advance(-1)


class TestTraceFile:
    def test_roundtrip_byte_identical(self, tmp_path):
        events = generate_trace(trace_config())
        path_a = tmp_path / "a.jsonl"
        path_b = tmp_path / "b.jsonl"
        save_trace(events, str(path_a))
        assert load_trace(str(path_a)) == events
        save_trace(load_trace(str(path_a)), str(path_b))
        assert path_a.read_bytes() == path_b.read_bytes()

    def test_event_dict_roundtrip(self):
        event = TraceEvent(
            round=3, tenant="t", conversation="t/c1", turn=1,
            new_tokens=(1, 2, 3), max_new_tokens=4, think_rounds=2,
        )
        assert TraceEvent.from_dict(event.as_dict()) == event


class TestReplayDeterminism:
    def test_report_byte_identical_across_runs(self, repo):
        reports = []
        for _ in range(2):
            clock = VirtualClock()
            gateway = build_gateway(repo, clock)
            runner = LoadRunner(gateway, clock, seconds_per_round=0.05)
            runner.run(generate_trace(trace_config()))
            reports.append(runner.report_json())
        assert reports[0] == reports[1]

    def test_report_shape_and_accounting(self, repo):
        clock = VirtualClock()
        gateway = build_gateway(repo, clock)
        runner = LoadRunner(gateway, clock, seconds_per_round=0.05)
        events = generate_trace(trace_config())
        runner.run(events)
        report = runner.report()
        assert report["rounds"] > 0
        total_submitted = sum(
            t["submitted"] for t in report["tenants"].values()
        )
        assert total_submitted == len(events)
        for name, tenant in report["tenants"].items():
            assert tenant["submitted"] == tenant["accepted"] + tenant["rejected"]
            assert tenant["accepted"] == tenant["completed"] + tenant["failed"]
            assert "slo" in tenant, name
            assert set(tenant["slo"]) == {"ttft", "latency", "availability"}

    def test_multi_turn_prompts_grow_the_stream(self, repo):
        """Turn n's prompt extends turn n-1's prompt + generated tokens —
        the shape prefix sharing accelerates."""
        clock = VirtualClock()
        gateway = build_gateway(repo, clock)
        runner = LoadRunner(gateway, clock, seconds_per_round=0.05)
        events = generate_trace(trace_config())
        multi = {e.conversation for e in events if e.turn > 0}
        assert multi
        runner.run(events)
        conv = runner._conversations[sorted(multi)[0]]
        first_turn = next(
            e for e in events
            if e.conversation == sorted(multi)[0] and e.turn == 0
        )
        assert len(conv.stream) > len(first_turn.new_tokens)
        # Prefix sharing engaged: conversations re-walked shared pages.
        summary = gateway.engine.stats.summary()
        assert summary.prefix_pages_attached > 0

    def test_report_is_valid_sorted_json(self, repo):
        clock = VirtualClock()
        gateway = build_gateway(repo, clock)
        runner = LoadRunner(gateway, clock, seconds_per_round=0.05)
        runner.run(generate_trace(trace_config(rounds=6)))
        text = runner.report_json()
        parsed = json.loads(text)
        assert text == json.dumps(parsed, sort_keys=True, indent=2) + "\n"
