"""Continuous-batching demo: mixed-length LM generation over OVP KV caches.

Run with ``python examples/continuous_batching_demo.py``.  The demo submits a
stream of LM generation requests with wildly mixed token budgets and shows

1. sequences being **admitted and retired mid-flight** — every time a short
   sequence finishes, a queued request takes over its slot in the very next
   decode round (the whole-batch baseline would leave that slot idle until
   the round's longest sequence finishes);
2. the **KV-cache memory story**: each sequence's K/V pages are sealed into
   memory-aligned OVP byte streams as it decodes, printed next to the bytes
   an fp32 cache would need for the same tokens;
3. the throughput gap against whole-batch release on the same stream.
"""

import time

import numpy as np

from repro.serve import (
    InferenceRequest,
    KVCacheConfig,
    ServingEngine,
    WorkloadFamily,
)

MODEL = "gpt2-xl"
NUM_SLOTS = 4
KV_CONFIG = KVCacheConfig(bits=4, page_size=8)


def make_stream(seed: int = 0):
    """Mixed-length generation stream: stragglers riding with quick ones."""
    rng = np.random.default_rng(seed)
    budgets = [48, 4, 8, 4, 40, 4, 8, 4, 48, 8, 4, 4]
    return [
        InferenceRequest(
            MODEL,
            WorkloadFamily.LM,
            rng.integers(0, 96, size=8),
            max_new_tokens=budget,
            top_k=3,
        )
        for budget in budgets
    ]


def watch_rounds(engine: ServingEngine, requests) -> float:
    """Drive the engine round by round, narrating admissions/retirements."""
    for request in requests:
        engine.submit(request)
    scheduler = engine.lm_scheduler
    print(f"== {len(requests)} generation requests over {NUM_SLOTS} slots ==")
    print(f"{'round':>5} {'active':>6} {'queued':>6} {'done':>4}  "
          f"{'KV packed':>10} {'KV fp32':>10}  retired this round")
    rounds = 0
    start = time.perf_counter()
    while engine.pending:
        retired = engine.step(force=True)
        rounds += 1
        if rounds % 8 == 0 or retired:
            names = ", ".join(
                f"{r.request_id}(+{len(r.output['generated_tokens'])} tok)"
                for r in retired
            )
            print(f"{rounds:>5} {scheduler.num_active:>6} {scheduler.num_queued:>6} "
                  f"{scheduler.retired:>4}  {scheduler.kv_cache_bytes:>9,}B "
                  f"{scheduler.kv_fp32_bytes:>9,}B  {names}")
    return time.perf_counter() - start


def main() -> None:
    engine = ServingEngine(
        max_batch_size=NUM_SLOTS,
        max_wait=0.0,
        num_slots=NUM_SLOTS,
        kv_cache_config=KV_CONFIG,
    )
    print("== warm: quantize the model once into packed OVP streams ==")
    entry = engine.warm(MODEL, WorkloadFamily.LM)
    print(f"  {MODEL}: {entry.num_weight_tensors} weight tensors, "
          f"{entry.packed_bytes / 1e3:.0f} kB packed "
          f"({entry.compression_ratio:.1f}x vs fp32)\n")

    continuous_seconds = watch_rounds(engine, make_stream())
    summary = engine.stats.summary()
    generated = summary.generated_tokens

    print("\n== KV cache memory (before/after OVP packing) ==")
    print(f"  fp32 cache at peak   : {summary.kv_fp32_bytes_peak:,} bytes")
    print(f"  OVP-paged cache      : {summary.kv_cache_bytes_peak:,} bytes "
          f"({summary.kv_compression:.1f}x smaller)")
    print(f"  mean slot occupancy  : {summary.mean_slot_occupancy * 100:.0f}%")

    whole_batch = ServingEngine(
        repository=engine.repository,
        max_batch_size=NUM_SLOTS,
        max_wait=0.0,
        kv_cache_config=KV_CONFIG,
        continuous_batching=False,
    )
    start = time.perf_counter()
    whole_batch.serve(make_stream())
    whole_seconds = time.perf_counter() - start

    print("\n== continuous batching vs whole-batch release ==")
    print(f"  continuous : {generated / continuous_seconds:>6.0f} tokens/s "
          f"({continuous_seconds * 1e3:.0f} ms)")
    print(f"  whole-batch: {generated / whole_seconds:>6.0f} tokens/s "
          f"({whole_seconds * 1e3:.0f} ms)")
    print(f"  speedup    : {whole_seconds / continuous_seconds:.2f}x on a "
          f"mixed-length stream")


if __name__ == "__main__":
    main()
