"""Quickstart: quantize a tensor and a model with OliVe's OVP encoding.

Run with ``python examples/quickstart.py``.  The example walks through the
three levels of the public API:

1. tensor-level quantization (fit → fake-quantize → bit-packed encode/decode),
2. the memory-aligned packed format and its pair statistics,
3. model-level post-training quantization of a BERT-like analogue and its
   effect on a GLUE-like task.
"""

import numpy as np

from repro.core import make_quantizer, get_scheme, quantize_model
from repro.data import GLUE_TASKS, evaluate_classifier, make_glue_dataset
from repro.models import build_classifier
from repro.quant import Int4Quantizer


def tensor_level_demo() -> None:
    """Quantize a synthetic outlier-bearing tensor at 4 bits."""
    rng = np.random.default_rng(0)
    tensor = rng.normal(0.0, 1.0, size=8192)
    tensor[::512] *= 40.0  # inject a few large outliers, transformer-style

    olive = make_quantizer(bits=4)
    olive.fit(tensor)
    quantized = olive.quantize(tensor)
    int4 = Int4Quantizer()
    int4.fit(tensor)

    print("== tensor-level quantization ==")
    print(f"  OVP threshold          : {olive.threshold_sigma:.2f} sigma")
    print(f"  OliVe 4-bit MSE        : {np.mean((quantized - tensor) ** 2):.4f}")
    print(f"  plain int4 MSE         : {int4.quantization_mse(tensor):.4f}")

    packed = olive.encode(tensor)
    decoded = olive.decode(packed)
    print(f"  packed size            : {packed.nbytes} bytes "
          f"({packed.nbytes / tensor.nbytes * 100:.1f}% of float64)")
    print(f"  bit-exact vs fake-quant: {np.allclose(decoded, quantized)}")
    print(f"  pair statistics        : {olive.pair_statistics(tensor)}")


def model_level_demo() -> None:
    """Quantize a BERT-base analogue and score it on a GLUE-like task."""
    print("\n== model-level post-training quantization ==")
    model = build_classifier("bert-base", num_classes=2, seed=0)
    dataset = make_glue_dataset(
        GLUE_TASKS["SST-2"], model, vocab_size=model.config.vocab_size,
        num_examples=64, seq_len=32, seed=1,
    )
    print(f"  FP32 accuracy          : {evaluate_classifier(model, dataset):.2f}")
    for scheme_name in ("olive-4bit", "olive-8bit", "int4"):
        scheme = get_scheme(scheme_name)
        quantized = quantize_model(model, scheme, dataset.calibration_batch())
        print(f"  {scheme_name:<22}: {evaluate_classifier(quantized, dataset):.2f}")


if __name__ == "__main__":
    tensor_level_demo()
    model_level_demo()
