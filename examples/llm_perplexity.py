"""Reproduce the Table 9 workflow: LLM perplexity under different PTQ schemes.

Run with ``python examples/llm_perplexity.py [model]`` where ``model`` is one
of ``gpt2-xl``, ``bloom-7b1``, ``opt-6.7b`` (default ``opt-6.7b`` — the model
whose emergent activation outliers break plain int8 quantization).
"""

import sys

from repro.core import get_scheme, quantize_model
from repro.data import evaluate_perplexity, make_lm_dataset
from repro.models import build_causal_lm

SCHEMES = ["fp32", "int8", "olive-8bit", "int4", "ant-4bit", "olive-4bit"]


def main(model_name: str = "opt-6.7b") -> None:
    print(f"model analogue: {model_name}")
    teacher = build_causal_lm(model_name, seed=0)
    for corpus in ("wikitext", "c4"):
        dataset = make_lm_dataset(
            corpus, teacher, vocab_size=teacher.config.vocab_size,
            num_sequences=12, seq_len=32, seed=1,
        )
        print(f"\n  corpus: {corpus}")
        for scheme_name in SCHEMES:
            scheme = get_scheme(scheme_name)
            quantized = quantize_model(teacher, scheme, dataset.calibration_batch())
            ppl = evaluate_perplexity(quantized, dataset)
            print(f"    {scheme_name:<12} perplexity = {ppl:10.2f}")


if __name__ == "__main__":
    main(sys.argv[1] if len(sys.argv) > 1 else "opt-6.7b")
