"""Prefix-sharing demo: one system prompt, many requests, pages decoded once.

Run with ``python examples/prefix_sharing_demo.py``.  The demo serves a wave
of LM generation requests that all start with the same long "system prompt"
followed by a short user-specific suffix — the classic chat-serving shape —
and shows

1. **prefix sharing**: the first request prefills and seals the system
   prompt's KV pages; every later request's prompt hashes to those sealed
   pages and *attaches* to them copy-on-write instead of re-running (and
   re-quantizing) the prefill, so admission cost drops to the suffix;
2. **decode-once paging**: sealed pages are OVP-decoded once into the page
   pool's bounded LRU and every later decode round (of every sequence) reuses
   the decoded values — the per-round attend stops paying O(cached tokens)
   re-decode;
3. the pool's accounting: hit rate, decode bytes saved, shared-page counts.
"""

import time

import numpy as np

from repro.serve import (
    InferenceRequest,
    KVCacheConfig,
    ServingEngine,
    WorkloadFamily,
)

MODEL = "gpt2-xl"
SYSTEM_PROMPT_LEN = 48
SUFFIX_LEN = 8
NUM_REQUESTS = 6
KV_CONFIG = KVCacheConfig(bits=4, page_size=8)  # pool + prefix sharing on


def make_requests(system_prompt, seed: int = 1):
    """Same system prompt, different user suffixes (and one exact repeat)."""
    rng = np.random.default_rng(seed)
    requests = []
    for i in range(NUM_REQUESTS):
        suffix = rng.integers(0, 96, size=SUFFIX_LEN)
        requests.append(
            InferenceRequest(
                MODEL,
                WorkloadFamily.LM,
                np.concatenate([system_prompt, suffix]),
                max_new_tokens=6,
            )
        )
    return requests


def serve_one_by_one(engine, requests):
    """Serve sequentially so each admission can hit the prior prompts' pages."""
    results = []
    start = time.perf_counter()
    for request in requests:
        results.extend(engine.serve([request]))
    return results, time.perf_counter() - start


def main() -> None:
    system_prompt = np.random.default_rng(0).integers(0, 96, size=SYSTEM_PROMPT_LEN)

    engine = ServingEngine(max_batch_size=4, max_wait=0.0, kv_cache_config=KV_CONFIG)
    print("== warm: quantize the model once into packed OVP streams ==")
    engine.warm(MODEL, WorkloadFamily.LM)

    print(f"\n== {NUM_REQUESTS} requests sharing a {SYSTEM_PROMPT_LEN}-token "
          f"system prompt (+{SUFFIX_LEN}-token suffixes) ==")
    results, shared_seconds = serve_one_by_one(engine, make_requests(system_prompt))
    for result in results:
        kv = result.output["kv_cache"]
        # Cached steps = prompt + generated - 1 (the last token is returned
        # but never fed back), so recover the prompt length for display.
        prompt_len = kv["seq_len"] - (len(result.output["generated_tokens"]) - 1)
        print(f"  {result.request_id}: prefix-shared {kv['prefix_shared_tokens']:>2} "
              f"of {prompt_len} prompt tokens, "
              f"{kv['shared_pages']} shared pages in its cache")

    pool = engine.page_pool
    stats = pool.stats()
    summary = engine.stats.summary()
    print("\n== page pool ==")
    print(f"  decode hit rate      : {summary.pool_hit_rate * 100:.0f}% "
          f"({stats['decode_hits']} hits / {stats['decode_misses']} decodes)")
    print(f"  decode bytes saved   : {stats['decoded_bytes_saved']:,}")
    print(f"  prefix pages attached: {stats['prefix_pages_attached']}")
    print(f"  live pages / nodes   : {stats['entries']} / {stats['prefix_nodes']}")

    cold_engine = ServingEngine(
        repository=engine.repository,
        max_batch_size=4,
        max_wait=0.0,
        kv_cache_config=KVCacheConfig(bits=4, page_size=8, prefix_sharing=False,
                                      pool_decoded_mb=0.0),
    )
    cold_results, cold_seconds = serve_one_by_one(
        cold_engine, make_requests(system_prompt)
    )

    same_tokens = all(
        a.output["generated_tokens"] == b.output["generated_tokens"]
        for a, b in zip(results, cold_results)
    )
    print("\n== shared pool vs cold (no sharing, re-decode every round) ==")
    print(f"  shared pool : {shared_seconds * 1e3:6.0f} ms")
    print(f"  cold        : {cold_seconds * 1e3:6.0f} ms")
    print(f"  speedup     : {cold_seconds / shared_seconds:.2f}x, "
          f"greedy tokens identical: {same_tokens}")


if __name__ == "__main__":
    main()
