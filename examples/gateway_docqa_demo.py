"""Multi-tenant gateway + document-QA demo.

Run with ``python examples/gateway_docqa_demo.py``.  Four short acts walk
the new serving front door end to end:

1. **tenancy** — two tenants (an interactive chat tenant and a
   long-document tenant) authenticate with API keys; bad keys get a typed
   401 envelope, bursts beyond the token bucket a retryable 429, and
   traffic beyond the concurrency quota a retryable 429 that clears as
   requests finish;
2. **chunked prefill** — the document tenant's 56-token prompt absorbs one
   page-aligned 8-token chunk per round, so the interactive tenant's short
   request settles while the document is still prefilling (and the greedy
   tokens match an unchunked run exactly);
3. **trace replay** — a seeded bursty multi-tenant trace replays through
   the gateway on a virtual clock; the per-tenant report (counts, latency,
   SLO attainment) is byte-identical on every run of the same trace;
4. **document QA** — questions fan out across overlapping document chunks
   through the gateway's span family, answers aggregate by normalized span
   confidence, and every question clears its confidence floor.
"""

import numpy as np

from repro.serve import (
    Gateway,
    GatewayConfig,
    InferenceRequest,
    KVCacheConfig,
    LoadRunner,
    ModelRepository,
    ServingEngine,
    TenantConfig,
    TenantLoad,
    TraceConfig,
    VirtualClock,
    WorkloadFamily,
    generate_trace,
)
from repro.workloads.docqa import DocQAPipeline, ExpectedAnswer, Question, run_harness

MODEL = "gpt2-xl"
VOCAB = 96
CACHE = KVCacheConfig(bits=4, page_size=8, prefix_sharing=True)

INTERACTIVE_KEY = "demo-key-interactive"
DOCUMENTS_KEY = "demo-key-documents"
DOCQA_KEY = "demo-key-docqa"


def tenancy():
    return GatewayConfig(
        tenants=(
            TenantConfig(
                name="interactive",
                api_key=INTERACTIVE_KEY,
                priority=10,
                requests_per_second=2.0,
                burst=2,
            ),
            TenantConfig(
                name="documents",
                api_key=DOCUMENTS_KEY,
                priority=0,
                max_concurrent=2,
            ),
        ),
        max_queue_depth=16,
        preempt=True,
    )


def build_gateway(repo, clock=None, prefill_chunk_tokens=8, config=None):
    config = config or tenancy()
    kwargs = {} if clock is None else {"clock": clock}
    engine = ServingEngine(
        repo,
        kv_cache_config=CACHE,
        num_slots=4,
        admission=config.admission_policy(),
        health=config.health_config(),
        prefill_chunk_tokens=prefill_chunk_tokens,
        **kwargs,
    )
    return Gateway(engine, config)


def request(seq_len, max_new_tokens, seed):
    rng = np.random.default_rng(seed)
    return InferenceRequest(
        MODEL,
        WorkloadFamily.LM,
        rng.integers(0, VOCAB, size=seq_len),
        max_new_tokens=max_new_tokens,
    )


def act_1_tenancy(repo):
    print("=== act 1: tenants, keys, limits ===")
    clock = VirtualClock()
    gateway = build_gateway(repo, clock=clock)

    bad = gateway.submit("wrong-key", request(8, 2, 1))
    print(f"bad key          -> {bad.status} {bad.error.code}")

    first = gateway.submit(INTERACTIVE_KEY, request(8, 2, 2))
    second = gateway.submit(INTERACTIVE_KEY, request(8, 2, 3))
    burst = gateway.submit(INTERACTIVE_KEY, request(8, 2, 4))
    print(f"burst of 3 at 2 rps (burst 2) -> {first.status}, "
          f"{second.status}, {burst.status} ({burst.error.code}, "
          f"retryable={burst.error.retryable})")
    clock.advance(1.0)
    refilled = gateway.submit(INTERACTIVE_KEY, request(8, 2, 5))
    print(f"1s later          -> {refilled.status} (bucket refilled)")

    quota = [gateway.submit(DOCUMENTS_KEY, request(12, 2, 10 + i))
             for i in range(3)]
    print(f"documents quota 2 -> {[e.status for e in quota]} "
          f"({quota[-1].error.code})")
    gateway.run_until_idle()
    after = gateway.submit(DOCUMENTS_KEY, request(12, 2, 20))
    print(f"after drain       -> {after.status} (quota released)")
    gateway.run_until_idle()


def act_2_chunked_prefill(repo):
    print("\n=== act 2: chunked prefill keeps interactive latency flat ===")

    def interleave(chunk):
        gateway = build_gateway(repo, prefill_chunk_tokens=chunk)
        doc = request(56, 2, 100)
        probe = request(7, 2, 200)
        gateway.submit(DOCUMENTS_KEY, doc)
        gateway.submit(INTERACTIVE_KEY, probe)
        waiting = {doc.request_id, probe.request_id}
        order, rounds = [], 0
        while waiting:
            for envelope in gateway.step(force=True):
                order.append(envelope.request_id)
                waiting.discard(envelope.request_id)
            rounds += 1
            if rounds > 200:
                raise AssertionError("did not drain")
        tokens = gateway.poll(doc.request_id).body["token_ids"]
        return order, rounds, tokens

    chunked_order, chunked_rounds, chunked_tokens = interleave(8)
    _, unchunked_rounds, unchunked_tokens = interleave(None)
    print(f"chunked:   {chunked_rounds} rounds; interactive settled first "
          f"({chunked_order[0]} before {chunked_order[-1]})")
    print(f"unchunked: {unchunked_rounds} rounds (whole 56-token prefill in one)")
    print(f"document tokens identical chunked vs unchunked: "
          f"{chunked_tokens == unchunked_tokens}")


def act_3_trace_replay(repo):
    print("\n=== act 3: seeded trace replay, per-tenant SLO report ===")
    trace = generate_trace(TraceConfig(
        tenants=(
            TenantLoad(
                name="interactive",
                arrivals_per_round=0.6,
                burst_rounds=3,
                idle_rounds=3,
                prompt_tokens=(6, 14),
                max_new_tokens=3,
                turns_range=(1, 3),
            ),
            TenantLoad(
                name="documents",
                arrivals_per_round=0.3,
                prompt_tokens=(40, 56),
                max_new_tokens=2,
            ),
        ),
        rounds=16,
        seed=7,
    ))
    reports = []
    for _ in range(2):
        clock = VirtualClock()
        gateway = build_gateway(repo, clock=clock)
        runner = LoadRunner(gateway, clock, seconds_per_round=0.05)
        runner.run(trace)
        reports.append(runner.report_json())
    report = runner.report()
    print(f"{len(trace)} trace events over {report['rounds']} rounds")
    for name, tenant in sorted(report["tenants"].items()):
        slo = tenant.get("slo", {})
        availability = slo.get("availability", {}).get("attainment")
        print(f"  {name:<12} submitted={tenant['submitted']:<3} "
              f"accepted={tenant['accepted']:<3} rejected={tenant['rejected']:<3} "
              f"completed={tenant['completed']:<3} availability={availability}")
    print(f"report byte-identical across replays: {reports[0] == reports[1]}")


def act_4_document_qa(repo):
    print("\n=== act 4: document QA with confidence floors ===")
    repo.get("bert-base", WorkloadFamily.SPAN)
    config = GatewayConfig(tenants=(
        TenantConfig(name="docqa", api_key=DOCQA_KEY, max_concurrent=64),
    ))
    rng = np.random.default_rng(42)
    document = [int(t) for t in rng.integers(0, VOCAB, size=120)]
    questions = [
        Question(f"q{i}", tuple(int(t) for t in rng.integers(0, VOCAB, size=6)))
        for i in range(3)
    ]

    def pipeline():
        gateway = build_gateway(repo, config=config, prefill_chunk_tokens=None)
        return DocQAPipeline(gateway, DOCQA_KEY, model="bert-base",
                             chunk_tokens=48, overlap=8)

    reference = pipeline().ask(questions, document)
    expectations = [
        ExpectedAnswer(qid, min_confidence=round(r.confidence * 0.9, 6),
                       expected_span=r.span)
        for qid, r in reference.items()
    ]
    report = run_harness(pipeline(), questions, expectations, document)
    for qid, entry in sorted(report["questions"].items()):
        print(f"  {qid}: span={entry['span']} confidence={entry['confidence']:.4f} "
              f"(floor {entry['min_confidence']:.4f}) "
              f"ok={entry['confidence_ok'] and entry['span_ok']}")
    print(f"harness passed: {report['passed']}")


def main():
    repo = ModelRepository(bits=4, seed=0)
    repo.get(MODEL, WorkloadFamily.LM)
    act_1_tenancy(repo)
    act_2_chunked_prefill(repo)
    act_3_trace_replay(repo)
    act_4_document_qa(repo)


if __name__ == "__main__":
    main()
