"""Reproduce the paper's motivation studies (Fig. 2, Table 2, Fig. 3, Fig. 5).

Run with ``python examples/outlier_analysis.py``.  The script answers the
three questions Section 2 of the paper asks:

1. How large are transformer outliers compared to CNN outliers?  (Fig. 2)
2. How often do two outliers land in the same adjacent pair?      (Table 2)
3. Is it safe to sacrifice the values next to outliers (victims),
   and which abfloat layout represents outliers best?              (Fig. 3, Fig. 5)
"""

from repro.experiments.fig2_outliers import format_fig2, run_fig2
from repro.experiments.fig3_pruning import format_fig3, run_fig3
from repro.experiments.fig5_abfloat_error import format_fig5, run_fig5
from repro.experiments.table2_pairs import format_table2, run_table2


def main() -> None:
    print("=== Fig. 2: CNN vs Transformer outliers ===\n")
    print(format_fig2(run_fig2()))

    print("\n=== Table 2: pair-type census ===\n")
    print(format_table2(run_table2()))

    print("\n=== Fig. 5: abfloat configuration study ===\n")
    result5 = run_fig5()
    print(format_fig5(result5))
    print(f"\nbest overall configuration: {result5.best_overall()}")

    print("\n=== Fig. 3: clip outliers vs prune victims (this takes a minute) ===\n")
    print(format_fig3(run_fig3(tasks=("SST-2", "MNLI"), num_examples=48)))


if __name__ == "__main__":
    main()
