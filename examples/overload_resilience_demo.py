"""Overload-resilience demo: admission, deadlines, preemption, chaos.

Run with ``python examples/overload_resilience_demo.py``.  Four short acts
show the serving layer refusing to melt under pressure:

1. **bounded admission** — a depth-bounded queue sheds excess load with a
   typed, retryable :class:`QueueFullError` instead of queueing unboundedly;
2. **deadlines** — a request whose end-to-end deadline expires mid-decode
   terminates with ``finish_reason="deadline"``, partial output delivered,
   its slot and KV pages freed exactly like a cancel;
3. **priority preemption** — an interactive request evicts a running batch
   request; the victim's sealed OVP pages park under the prefix index and
   re-attach copy-on-write on resume, so the final output is token-identical
   to an uninterrupted run;
4. **fault injection** — a seeded :class:`FaultInjector` throws an error
   into a decode round; the scheduler aborts the in-flight slots, balances
   every page refcount, and keeps serving the next request.
"""

import numpy as np

from repro.serve import (
    AdmissionPolicy,
    ContinuousBatchingScheduler,
    FaultInjector,
    FaultSchedule,
    FaultSpec,
    InferenceRequest,
    InjectedFault,
    KVCacheConfig,
    ModelRepository,
    QueueFullError,
    SamplingParams,
    ServingStats,
    WorkloadFamily,
)

MODEL = "gpt2-xl"
VOCAB = 96
CACHE = KVCacheConfig(bits=4, page_size=4, prefix_sharing=True)


def request(prompt, max_new_tokens=4, slo_class="default", deadline_s=None):
    return InferenceRequest(
        MODEL,
        WorkloadFamily.LM,
        np.asarray(prompt) % VOCAB,
        sampling=SamplingParams(max_new_tokens=max_new_tokens, seed=0),
        slo_class=slo_class,
        deadline_s=deadline_s,
    )


def drain(scheduler, limit=100):
    results = []
    for _ in range(limit):
        if not len(scheduler):
            return results
        results.extend(scheduler.step())
    raise RuntimeError("scheduler did not drain")


def act_bounded_admission(repository):
    print("== act 1: bounded admission sheds excess load ==")
    stats = ServingStats()
    scheduler = ContinuousBatchingScheduler(
        repository,
        num_slots=1,
        cache_config=CACHE,
        stats=stats,
        admission=AdmissionPolicy(max_queue_depth=2),
    )
    admitted, shed = 0, 0
    for i in range(6):
        try:
            scheduler.submit(request(np.arange(5) + i))
            admitted += 1
        except QueueFullError:
            shed += 1
    print(f"  offered 6 requests to a depth-2 queue: "
          f"{admitted} admitted, {shed} shed (typed, retryable)")
    done = drain(scheduler)
    print(f"  queue drained: {len(done)} finished; "
          f"rejected counter = {scheduler.rejected}")
    counter = stats.registry.get("serve_requests_rejected_total")
    print(f"  serve_requests_rejected_total{{queue_full,default}} = "
          f"{counter.value_sum(reason='queue_full', slo_class='default')}")
    assert shed == 4 and len(done) == 2


def act_deadlines(repository):
    print("== act 2: deadlines fire mid-decode, partial output kept ==")
    now = [0.0]
    stats = ServingStats()
    scheduler = ContinuousBatchingScheduler(
        repository,
        num_slots=1,
        cache_config=CACHE,
        clock=lambda: now[0],
        stats=stats,
    )
    hurried = request(np.arange(6), max_new_tokens=32, deadline_s=10.0)
    scheduler.submit(hurried)
    scheduler.step()  # prefill + first tokens, well inside the deadline
    now[0] = 11.0     # the clock strides past the end-to-end deadline
    results = drain(scheduler)
    out = results[0].output
    print(f"  finish_reason={out.finish_reason!r} after "
          f"{len(out.token_ids)} of 32 tokens; slot and pages freed")
    counter = stats.registry.get("serve_deadline_misses_total")
    print(f"  serve_deadline_misses_total{{default}} = "
          f"{counter.value(slo_class='default')}")
    assert out.finish_reason == "deadline" and 0 < len(out.token_ids) < 32


def act_preemption(repository):
    print("== act 3: preempt, park sealed pages, resume token-identical ==")
    baseline_scheduler = ContinuousBatchingScheduler(
        repository, num_slots=1, cache_config=CACHE
    )
    victim_prompt = np.arange(9)
    baseline_scheduler.submit(request(victim_prompt, max_new_tokens=8,
                                      slo_class="batch"))
    baseline = drain(baseline_scheduler)[0]

    stats = ServingStats()
    scheduler = ContinuousBatchingScheduler(
        repository,
        num_slots=1,
        cache_config=CACHE,
        stats=stats,
        admission=AdmissionPolicy(
            class_priority={"interactive": 10, "batch": 0}, preempt=True
        ),
    )
    victim = request(victim_prompt, max_new_tokens=8, slo_class="batch")
    scheduler.submit(victim)
    for _ in range(3):
        scheduler.step()  # victim decodes a few tokens...
    scheduler.submit(request(np.arange(5) + 40, max_new_tokens=2,
                             slo_class="interactive"))
    results = {r.request_id: r for r in drain(scheduler)}
    resumed = results[victim.request_id].output
    identical = list(resumed.token_ids) == list(baseline.output.token_ids)
    print(f"  preemptions = {scheduler.preempted}; victim resumed with "
          f"prefix_shared_tokens = {resumed.kv_cache['prefix_shared_tokens']}, "
          f"shared_pages = {resumed.kv_cache['shared_pages']}")
    print(f"  resumed output token-identical to uninterrupted run: {identical}")
    assert scheduler.preempted == 1 and identical


def act_fault_injection(repository):
    print("== act 4: seeded fault injection, abort, keep serving ==")
    scheduler = ContinuousBatchingScheduler(
        repository, num_slots=2, cache_config=CACHE
    )
    schedule = FaultSchedule((
        FaultSpec("phase_error", phase="round", at_count=2),
    ))
    injector = FaultInjector(schedule).attach(scheduler)
    doomed = request(np.arange(7), max_new_tokens=6)
    scheduler.submit(doomed)
    aborted = []
    while len(scheduler):
        try:
            scheduler.step()
        except InjectedFault as exc:
            aborted = scheduler.abort_active(exc)
    failures = dict(scheduler.take_failures())
    print(f"  round 2 raised {type(list(failures.values())[0]).__name__}; "
          f"aborted {len(aborted)} in-flight request(s)")
    print(f"  pool entries after abort: {scheduler.page_pool.num_entries} "
          f"refcounts balanced; injector fired {len(injector.fired)} fault(s)")
    probe = request(np.arange(4), max_new_tokens=2)
    scheduler.submit(probe)
    results = drain(scheduler)
    print(f"  probe request after the fault: "
          f"finish_reason={results[0].output.finish_reason!r} — still serving")
    assert doomed.request_id in failures
    assert results[0].request_id == probe.request_id


def main():
    repository = ModelRepository(bits=4, seed=0)
    repository.get(MODEL, WorkloadFamily.LM)
    act_bounded_admission(repository)
    act_deadlines(repository)
    act_preemption(repository)
    act_fault_injection(repository)
    print("overload resilience demo: OK")


if __name__ == "__main__":
    main()
