"""Telemetry demo: trace a speculative serving run and profile its rounds.

Run with ``python examples/telemetry_demo.py``.  The demo

1. serves a greedy speculative request stream under an enabled
   :class:`~repro.serve.telemetry.Tracer` — every decode round records its
   phase spans (admit, draft_propose, verify_batch, per-bucket attend,
   kv_append, sample, retire) and every request records its lifecycle
   (queued -> prefill -> decode -> finish);
2. prints the per-phase wall-clock breakdown (``phase_report``) and an
   excerpt of the Prometheus metrics exposition (``metrics_text``);
3. writes the Chrome ``trace_event`` JSON to
   ``artifacts/telemetry_trace.json`` — load it at chrome://tracing or
   https://ui.perfetto.dev — and validates it (balanced B/E events,
   per-track monotone timestamps).

Set ``REPRO_ARTIFACTS_DIR`` to redirect the output directory; it is
created on demand and ignored by git (CI uploads it instead).
"""

import json
import os

import numpy as np

from repro.serve import (
    InferenceRequest,
    KVCacheConfig,
    ModelRepository,
    SamplingParams,
    ServingEngine,
    SpeculativeConfig,
    Tracer,
    WorkloadFamily,
    validate_chrome_trace,
)

MODEL = "gpt2-xl"
NUM_REQUESTS = 8
NEW_TOKENS = 24
ARTIFACTS_DIR = os.environ.get(
    "REPRO_ARTIFACTS_DIR",
    os.path.join(os.path.dirname(__file__), "..", "artifacts"),
)
TRACE_PATH = os.path.join(ARTIFACTS_DIR, "telemetry_trace.json")


def requests():
    rng = np.random.default_rng(42)
    return [
        InferenceRequest(
            MODEL,
            WorkloadFamily.LM,
            rng.integers(0, 96, size=8),
            sampling=SamplingParams(max_new_tokens=NEW_TOKENS),
        )
        for _ in range(NUM_REQUESTS)
    ]


def main():
    tracer = Tracer()
    engine = ServingEngine(
        ModelRepository(bits=4, seed=0),
        num_slots=4,
        kv_cache_config=KVCacheConfig(bits=4, page_size=16),
        speculative=SpeculativeConfig(),
        tracer=tracer,
    )
    engine.warm(MODEL, WorkloadFamily.LM)
    engine.warm_speculative(MODEL)
    tracer.reset()  # profile serving, not the one-off draft calibration

    print("== traced speculative serve")
    results = engine.serve(requests())
    summary = engine.stats.summary()
    print(f"   requests: {summary.requests}, decode rounds: {summary.decode_rounds}, "
          f"generated: {summary.generated_tokens}")
    print(f"   draft acceptance: {summary.draft_acceptance_rate:.1%}")

    print("\n== per-phase round breakdown (phase_report)")
    report = engine.phase_report()
    print(report.table())

    print("\n== metrics exposition excerpt (metrics_text)")
    for line in engine.metrics_text().splitlines():
        if line.startswith(("serve_decode_rounds_total", "serve_generated_tokens_total",
                            "serve_draft_acceptance_ratio", "serve_pool_hit_rate",
                            "serve_requests_finished_total")):
            print(f"   {line}")

    trace_path = os.path.normpath(TRACE_PATH)
    os.makedirs(os.path.dirname(trace_path), exist_ok=True)
    tracer.write_chrome_trace(trace_path)
    with open(trace_path, "r", encoding="utf-8") as handle:
        counts = validate_chrome_trace(handle.read())
    print(f"\n== chrome trace written to {trace_path}")
    print(f"   events: {counts} (balanced, monotone; open at chrome://tracing)")

    lifecycle_tracks = {entry[0] for entry in tracer.lifecycles()}
    assert len(results) == NUM_REQUESTS
    assert lifecycle_tracks == {r.request_id for r in results}
    assert report.coverage >= 0.9, f"phase coverage {report.coverage:.1%} < 90%"
    assert counts["B"] == counts["E"] > 0
    print(f"== named-phase coverage {report.coverage:.1%} (>= 90% required)")


if __name__ == "__main__":
    main()
