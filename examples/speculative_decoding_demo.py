"""Speculative decoding demo: a layer-prefix draft verified in batched rounds.

Run with ``python examples/speculative_decoding_demo.py``.  The demo

1. pairs the served ``gpt2-xl`` analogue with its packed 1-layer draft
   (``gpt2-xl@draft1``) and calibrates the speculative heads (one-off,
   at ``warm_speculative`` time);
2. serves the same greedy request stream with and without speculation and
   shows the streams are **token-for-token identical** — every emitted
   token is sampled from the target's own verified distribution;
3. prints the speculative telemetry: proposed/accepted draft tokens, the
   acceptance rate, and the decode-round reduction (each round streams the
   packed target weights once on the modeled accelerator, and the draft's
   packed streams are byte-identical subsets of the target's — speculation
   adds no weight bytes).
"""

import numpy as np

from repro.serve import (
    InferenceRequest,
    KVCacheConfig,
    ModelRepository,
    SamplingParams,
    ServingEngine,
    SpeculativeConfig,
    WorkloadFamily,
)

MODEL = "gpt2-xl"
NUM_REQUESTS = 12
NEW_TOKENS = 32


def requests():
    rng = np.random.default_rng(42)
    return [
        InferenceRequest(
            MODEL,
            WorkloadFamily.LM,
            rng.integers(0, 96, size=8),
            sampling=SamplingParams(max_new_tokens=NEW_TOKENS),
        )
        for _ in range(NUM_REQUESTS)
    ]


def serve(speculative):
    engine = ServingEngine(
        ModelRepository(bits=4, seed=0),
        num_slots=4,
        kv_cache_config=KVCacheConfig(bits=4, page_size=16),
        speculative=speculative,
    )
    engine.warm(MODEL, WorkloadFamily.LM)
    if speculative is not None:
        engine.warm_speculative(MODEL)
    results = engine.serve(requests())
    return [list(r.output.token_ids) for r in results], engine.stats.summary()


def main():
    print("== plain greedy decode")
    plain_tokens, plain = serve(None)
    print(f"   decode rounds: {plain.decode_rounds}, "
          f"generated: {plain.generated_tokens}")

    print("== speculative decode (draft gpt2-xl@draft1, calibrated heads)")
    spec_tokens, spec = serve(SpeculativeConfig())
    print(f"   decode rounds: {spec.decode_rounds}, "
          f"generated: {spec.generated_tokens}")
    print(f"   proposed draft tokens: {spec.draft_proposed_tokens}, "
          f"accepted: {spec.draft_accepted_tokens} "
          f"(acceptance rate {spec.draft_acceptance_rate:.1%})")

    identical = spec_tokens == plain_tokens
    print(f"== token streams identical: {identical}")
    rounds_ratio = plain.decode_rounds / spec.decode_rounds
    print(f"== target decode rounds reduced {rounds_ratio:.2f}x "
          f"(one packed weight stream per round on the modeled accelerator)")
    assert identical, "speculative greedy decode must match plain greedy"
    sample = spec_tokens[0][:10]
    print(f"   first stream, first 10 tokens: {sample}")


if __name__ == "__main__":
    main()
