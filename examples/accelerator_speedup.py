"""Reproduce the Fig. 9 / Fig. 10 workflow: performance and energy simulation.

Run with ``python examples/accelerator_speedup.py``.  The script simulates
full-size transformer inference (real architectural dimensions, paper batch
sizes) on both integration targets:

* the OliVe-extended Turing GPU against ANT, int8 tensor cores and GOBO;
* the OliVe systolic-array accelerator against ANT, OLAccel and AdaptivFloat;

and prints per-model speedups, geomean speedups and normalised energy.
"""

from repro.experiments.fig9_gpu import format_fig9, run_fig9
from repro.experiments.fig10_accel import format_fig10, run_fig10
from repro.experiments.tables_area import format_table10, format_table11, run_table10, run_table11


def main() -> None:
    print("=== GPU integration (paper Fig. 9) ===\n")
    print(format_fig9(run_fig9()))

    print("\n\n=== Systolic-array accelerator (paper Fig. 10) ===\n")
    print(format_fig10(run_fig10()))

    print("\n\n=== Area overhead (paper Tables 10-11) ===\n")
    print(format_table10(run_table10()))
    print()
    print(format_table11(run_table11()))


if __name__ == "__main__":
    main()
