"""Streaming + sampling demo: the redesigned generation API end to end.

Run with ``python examples/streaming_sampling_demo.py``.  The demo shows

1. **SamplingParams** — the same prompt decoded greedily
   (``temperature=0``, bitwise the old decoder), with temperature/top-k/
   top-p sampling under a fixed seed (rerunning the script reproduces the
   sampled stream exactly), and with a stop token;
2. **streaming** — ``for chunk in engine.stream(request_id)`` yields one
   :class:`~repro.serve.sampling.TokenChunk` per decode round, with per-token
   logprobs and the ``finish_reason`` on the final chunk;
3. **cancellation** — a long request aborted mid-stream frees its slot and
   KV pages immediately and ends the stream with ``finish_reason="aborted"``;
4. the new **stats**: finish-reason counts, time-to-first-token and
   inter-token latency percentiles.
"""

import numpy as np

from repro.serve import (
    InferenceRequest,
    KVCacheConfig,
    SamplingParams,
    ServingEngine,
    WorkloadFamily,
)

MODEL = "gpt2-xl"
PROMPT = np.random.default_rng(7).integers(0, 96, size=12)


def request(params: SamplingParams) -> InferenceRequest:
    return InferenceRequest(MODEL, WorkloadFamily.LM, PROMPT, sampling=params)


def show_stream(engine: ServingEngine, label: str, params: SamplingParams):
    req = request(params)
    engine.submit(req)
    tokens, chunks = [], 0
    finish = None
    print(f"-- {label}")
    for chunk in engine.stream(req.request_id):
        chunks += 1
        if chunk.is_token:
            tokens.append(chunk.token_id)
            print(f"   chunk {chunk.index:>2}: token={chunk.token_id:<3} "
                  f"logprob={chunk.logprob:+.3f}")
        finish = chunk.finish_reason
    print(f"   => {len(tokens)} tokens in {chunks} chunks, "
          f"finish_reason={finish!r}: {tokens}")
    return tokens


def main() -> None:
    engine = ServingEngine(
        max_batch_size=4,
        max_wait=0.0,
        kv_cache_config=KVCacheConfig(bits=4, page_size=8),
    )
    engine.warm(MODEL, WorkloadFamily.LM)

    print("== 1. greedy (temperature=0: bitwise the pre-sampling decoder) ==")
    greedy = show_stream(
        engine, "greedy", SamplingParams(temperature=0, max_new_tokens=8)
    )

    print("\n== 2. seeded sampling (rerun the script: same tokens) ==")
    show_stream(
        engine,
        "temperature=3.0 top_k=20 top_p=0.95 seed=42",
        SamplingParams(
            temperature=3.0, top_k=20, top_p=0.95, seed=42, max_new_tokens=8
        ),
    )

    print("\n== 3. stop tokens ==")
    stop = greedy[2]  # end as soon as the greedy stream's 3rd token appears
    show_stream(
        engine,
        f"greedy, stop_token_ids=({stop},)",
        SamplingParams(max_new_tokens=8, stop_token_ids=(stop,)),
    )

    print("\n== 4. cancellation mid-stream ==")
    long_request = request(SamplingParams(max_new_tokens=48))
    engine.submit(long_request)
    for chunk in engine.stream(long_request.request_id):
        if chunk.is_token:
            print(f"   chunk {chunk.index:>2}: token={chunk.token_id}")
        else:
            print(f"   terminal chunk: finish_reason={chunk.finish_reason!r}")
        if chunk.index == 2:
            result = engine.cancel(long_request.request_id)
            print(f"   cancel() -> finish_reason={result.output.finish_reason!r}, "
                  f"slot + KV pages freed immediately")

    print("\n== 5. serving stats ==")
    summary = engine.stats.summary()
    print(f"   finish reasons      : {summary.finish_reasons}")
    print(f"   time-to-first-token : p50={summary.ttft_p50_ms:.2f}ms "
          f"p95={summary.ttft_p95_ms:.2f}ms")
    print(f"   inter-token latency : p50={summary.inter_token_p50_ms:.2f}ms "
          f"p95={summary.inter_token_p95_ms:.2f}ms")
    print(f"   generated tokens    : {summary.generated_tokens} "
          f"over {summary.decode_rounds} decode rounds")


if __name__ == "__main__":
    main()
