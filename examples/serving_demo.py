"""Serving demo: batched quantized inference over packed OVP weights.

Run with ``python examples/serving_demo.py``.  The demo walks through the
serving subsystem end to end:

1. a :class:`~repro.serve.repository.ModelRepository` quantizes three zoo
   models once and caches them as memory-aligned packed byte streams;
2. the synchronous :class:`~repro.serve.engine.ServingEngine` micro-batches a
   mixed stream of classification, span-extraction and LM requests;
3. the asyncio front-end serves the same traffic from concurrent client
   coroutines;
4. the stats layer reports throughput, p50/p95 latency, batch fill and the
   modelled DRAM traffic.
"""

import asyncio

import numpy as np

from repro.serve import (
    AsyncServer,
    InferenceRequest,
    ServingEngine,
    WorkloadFamily,
)

MODELS = {
    WorkloadFamily.CLASSIFY: "bert-base",
    WorkloadFamily.SPAN: "bert-large",
    WorkloadFamily.LM: "gpt2-xl",
}


def make_traffic(num_requests: int, seq_len: int = 32, seed: int = 0):
    """A shuffled mixed-workload request stream."""
    rng = np.random.default_rng(seed)
    requests = []
    for i in range(num_requests):
        family = list(MODELS)[i % len(MODELS)]
        requests.append(
            InferenceRequest(
                model=MODELS[family],
                family=family,
                token_ids=rng.integers(0, 96, size=seq_len),
                top_k=3,
            )
        )
    rng.shuffle(requests)
    return requests


def print_summary(title: str, engine: ServingEngine) -> None:
    summary = engine.stats.summary()
    print(f"\n== {title} ==")
    print(f"  requests / batches     : {summary.requests} / {summary.batches}")
    print(f"  throughput             : {summary.throughput_rps:.0f} req/s, "
          f"{summary.tokens_per_second:.0f} tokens/s")
    print(f"  latency p50 / p95      : {summary.latency_p50_ms:.2f} / "
          f"{summary.latency_p95_ms:.2f} ms")
    print(f"  mean batch fill        : {summary.mean_batch_fill * 100:.0f}%")
    print(f"  packed weights streamed: {summary.weight_stream_bytes / 1e6:.2f} MB")
    print(f"  modelled DRAM traffic  : {summary.dram_bytes / 1e6:.2f} MB")


def sync_demo() -> None:
    engine = ServingEngine(max_batch_size=8, max_wait=0.002)
    print("== model repository (quantize once, serve many) ==")
    for family, model in MODELS.items():
        entry = engine.warm(model, family)
        print(f"  {model:<11} {family:<9}: {entry.num_weight_tensors} packed tensors, "
              f"{entry.packed_bytes / 1e3:.0f} kB packed "
              f"({entry.compression_ratio:.1f}x vs fp32), "
              f"quantized in {entry.quantize_seconds * 1e3:.0f} ms, "
              f"decoded in {entry.decode_seconds * 1e3:.1f} ms")

    results = engine.serve(make_traffic(48))
    by_family = {}
    for result in results:
        by_family.setdefault(result.family, result)
    print("\n== sample results ==")
    sample = by_family[WorkloadFamily.CLASSIFY]
    print(f"  classify: label={sample.output['label']} "
          f"probs={[round(p, 3) for p in sample.output['probs']]}")
    sample = by_family[WorkloadFamily.SPAN]
    print(f"  span    : [{sample.output['start']}, {sample.output['end']}] "
          f"score={sample.output['score']:.2f}")
    sample = by_family[WorkloadFamily.LM]
    print(f"  lm      : next_tokens={sample.output['next_tokens']}")
    print_summary("synchronous serving", engine)
    print(f"  repository             : {engine.repository.stats}")


def async_demo() -> None:
    async def main():
        engine = ServingEngine(max_batch_size=8, max_wait=0.002)
        for family, model in MODELS.items():
            engine.warm(model, family)
        async with AsyncServer(engine) as server:
            results = await asyncio.gather(
                *(server.infer(r) for r in make_traffic(48, seed=1))
            )
        sizes = sorted({r.batch_size for r in results})
        print_summary("asyncio serving (48 concurrent clients)", engine)
        print(f"  observed batch sizes   : {sizes}")

    asyncio.run(main())


if __name__ == "__main__":
    sync_demo()
    async_demo()
